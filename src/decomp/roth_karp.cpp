#include "decomp/roth_karp.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>

#include "base/check.hpp"
#include "bdd/bdd.hpp"

namespace turbosyn {
namespace {

/// One Roth–Karp step on a function whose bound set already occupies
/// variables 0..boundary-1: the per-bound-assignment class code and one
/// representative truth table per class (over the full arity; classes do not
/// depend on bound variables).
struct ClassInfo {
  std::size_t multiplicity = 0;
  std::vector<std::uint32_t> code_of;   // size 2^boundary
  std::vector<TruthTable> class_tt;     // size multiplicity
  bool budget_exhausted = false;        // BDD node budget fired; info unusable
};

ClassInfo classify_bdd(const TruthTable& f, int boundary, std::size_t bdd_node_budget) {
  // With a caller-imposed node ceiling the manager saturates instead of
  // throwing; the only node-creating call is from_truth_table, so testing
  // exhausted() right after it decides whether the classification is valid.
  BddManager mgr(f.num_vars(), bdd_node_budget > 0 ? bdd_node_budget : (std::size_t{1} << 22),
                 bdd_node_budget > 0 ? BddManager::OnBudget::kSaturate
                                     : BddManager::OnBudget::kThrow);
  const BddRef root = mgr.from_truth_table(f);
  if (mgr.exhausted()) {
    ClassInfo info;
    info.budget_exhausted = true;
    return info;
  }
  const std::vector<BddRef> classes = mgr.boundary_cofactors(root, boundary);
  std::map<BddRef, std::uint32_t> index_of;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    index_of.emplace(classes[i], static_cast<std::uint32_t>(i));
  }
  ClassInfo info;
  info.multiplicity = classes.size();
  info.code_of.resize(std::size_t{1} << boundary);
  for (std::uint32_t a = 0; a < info.code_of.size(); ++a) {
    info.code_of[a] = index_of.at(mgr.cofactor_at(root, boundary, a));
  }
  info.class_tt.reserve(classes.size());
  for (const BddRef c : classes) {
    info.class_tt.push_back(mgr.to_truth_table(c, f.num_vars()));
  }
  return info;
}

ClassInfo classify_tt(const TruthTable& f, int boundary) {
  ClassInfo info;
  info.code_of.resize(std::size_t{1} << boundary);
  std::map<std::string, std::uint32_t> index_of;  // column signature -> class
  const int free_vars = f.num_vars() - boundary;
  const std::uint32_t free_count = std::uint32_t{1} << free_vars;
  for (std::uint32_t a = 0; a < info.code_of.size(); ++a) {
    std::string signature(free_count, '0');
    for (std::uint32_t y = 0; y < free_count; ++y) {
      if (f.bit(a | (y << boundary))) signature[y] = '1';
    }
    const auto [it, inserted] =
        index_of.emplace(std::move(signature), static_cast<std::uint32_t>(info.class_tt.size()));
    if (inserted) {
      // Representative: f with the bound variables fixed to this assignment.
      TruthTable rep = f;
      for (int v = 0; v < boundary; ++v) rep = rep.cofactor(v, (a >> v) & 1);
      info.class_tt.push_back(std::move(rep));
    }
    info.code_of[a] = it->second;
  }
  info.multiplicity = info.class_tt.size();
  return info;
}

int ceil_log2(std::size_t x) {
  TS_ASSERT(x >= 1);
  return x == 1 ? 0 : std::bit_width(x - 1);
}

struct Signal {
  int eff;          // effective label as seen at the root
  DecompFanin ref;  // what drives this signal
};

}  // namespace

std::size_t column_multiplicity_bdd(const TruthTable& f, int boundary) {
  return classify_bdd(f, boundary, /*bdd_node_budget=*/0).multiplicity;
}

std::size_t column_multiplicity_tt(const TruthTable& f, int boundary) {
  return classify_tt(f, boundary).multiplicity;
}

namespace {

/// Backtracking driver for decompose_for_label. Each recursion level picks a
/// bound set, performs one Roth–Karp step, and recurses on the residue;
/// dead ends backtrack to the next bound-set choice under a global attempt
/// budget (the paper's Cmax <= 15 keeps these functions tiny, so the budget
/// is rarely consumed).
class DecompSearch {
 public:
  DecompSearch(int target_label, const DecompOptions& options)
      : target_(target_label), options_(options), attempts_left_(options.max_attempts) {}

  bool solve(const TruthTable& f, std::vector<Signal> signals, std::vector<DecompLut>& luts) {
    if (static_cast<int>(signals.size()) <= options_.k) {
      // Root LUT fits: success iff every remaining signal meets the target.
      DecompLut root;
      root.func = f;
      achieved_ = 0;
      for (const Signal& s : signals) {
        root.fanins.push_back(s.ref);
        achieved_ = std::max(achieved_, s.eff + 1);
      }
      if (achieved_ > target_) return false;
      luts.push_back(std::move(root));
      return true;
    }
    const int m = static_cast<int>(signals.size());
    // Candidates for the bound set: signals that can afford one more level,
    // least critical first.
    std::vector<int> candidates;
    for (int i = 0; i < m; ++i) {
      if (signals[static_cast<std::size_t>(i)].eff <= target_ - 2) candidates.push_back(i);
    }
    std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      return signals[static_cast<std::size_t>(a)].eff < signals[static_cast<std::size_t>(b)].eff;
    });

    for (int b = std::min<int>(options_.k, static_cast<int>(candidates.size())); b >= 2; --b) {
      for (std::size_t start = 0; start + static_cast<std::size_t>(b) <= candidates.size();
           ++start) {
        if (attempts_left_-- <= 0) return false;
        const std::span<const int> bound(candidates.data() + start, static_cast<std::size_t>(b));
        if (try_step(f, signals, bound, luts)) return true;
      }
    }
    return false;
  }

  int achieved() const { return achieved_; }
  bool budget_limited() const { return budget_limited_; }

 private:
  bool try_step(const TruthTable& f, const std::vector<Signal>& signals,
                std::span<const int> bound, std::vector<DecompLut>& luts) {
    const int m = static_cast<int>(signals.size());
    const int b = static_cast<int>(bound.size());
    // Reorder: bound set to variables 0..b-1, the rest keep their order.
    std::vector<int> var_map(static_cast<std::size_t>(m), -1);
    std::vector<bool> in_bound(static_cast<std::size_t>(m), false);
    for (int j = 0; j < b; ++j) {
      var_map[static_cast<std::size_t>(bound[static_cast<std::size_t>(j)])] = j;
      in_bound[static_cast<std::size_t>(bound[static_cast<std::size_t>(j)])] = true;
    }
    int next = b;
    std::vector<int> kept;  // signal indices, in var order b..m-1
    for (int i = 0; i < m; ++i) {
      if (!in_bound[static_cast<std::size_t>(i)]) {
        var_map[static_cast<std::size_t>(i)] = next++;
        kept.push_back(i);
      }
    }
    const TruthTable reordered = f.remap(m, var_map);

    const ClassInfo info = options_.use_bdd
                               ? classify_bdd(reordered, b, options_.bdd_node_budget)
                               : classify_tt(reordered, b);
    if (info.budget_exhausted) {
      budget_limited_ = true;
      return false;  // could not even classify: treat as no compression
    }
    const int t = std::max(1, ceil_log2(info.multiplicity));
    if (t >= b) return false;  // no compression from this bound set

    // Encoder LUTs e_0..e_{t-1} over the bound signals.
    int eff_bound = 0;
    for (const int i : bound) {
      eff_bound = std::max(eff_bound, signals[static_cast<std::size_t>(i)].eff);
    }
    const std::size_t luts_mark = luts.size();
    std::vector<Signal> remaining;
    for (int j = 0; j < t; ++j) {
      DecompLut lut;
      lut.func = TruthTable::constant(b, false);
      for (std::uint32_t a = 0; a < info.code_of.size(); ++a) {
        if ((info.code_of[a] >> j) & 1) lut.func.set_bit(a, true);
      }
      for (const int i : bound) lut.fanins.push_back(signals[static_cast<std::size_t>(i)].ref);
      luts.push_back(std::move(lut));
      remaining.push_back(
          Signal{eff_bound + 1, DecompFanin::lut(static_cast<int>(luts.size() - 1))});
    }
    for (const int i : kept) remaining.push_back(signals[static_cast<std::size_t>(i)]);

    // New function over (code vars, kept vars).
    const int new_arity = t + (m - b);
    TruthTable next_f = TruthTable::constant(new_arity, false);
    const std::uint32_t total = std::uint32_t{1} << new_arity;
    for (std::uint32_t x = 0; x < total; ++x) {
      std::uint32_t code = x & ((std::uint32_t{1} << t) - 1);
      if (code >= info.multiplicity) code = 0;  // unreachable code: don't care
      const std::uint32_t kept_bits = x >> t;
      // Class tables are over the reordered arity; bound bits are don't
      // cares there, so place kept bits at positions b.. and zero-fill.
      if (info.class_tt[code].bit(kept_bits << b)) next_f.set_bit(x, true);
    }

    if (solve(next_f, std::move(remaining), luts)) return true;
    luts.resize(luts_mark);  // undo this step's encoders and backtrack
    return false;
  }

  int target_;
  const DecompOptions& options_;
  int attempts_left_;
  int achieved_ = 0;
  bool budget_limited_ = false;
};

}  // namespace

DecompResult decompose_for_label(const TruthTable& f, std::span<const int> eff_labels,
                                 int target_label, const DecompOptions& options) {
  TS_CHECK(options.k >= 2, "LUT size must be at least 2");
  TS_CHECK(static_cast<int>(eff_labels.size()) == f.num_vars(),
           "one effective label per input required");

  DecompResult result;

  // Restrict to the support: min-cuts can include inputs the cut function
  // does not actually depend on.
  TruthTable current = f;
  std::vector<Signal> signals;
  {
    const std::vector<int> support = current.support();
    for (const int v : support) {
      signals.push_back(Signal{eff_labels[static_cast<std::size_t>(v)], DecompFanin::input(v)});
    }
    for (int v = f.num_vars() - 1; v >= 0; --v) {
      if (!std::binary_search(support.begin(), support.end(), v)) {
        current = current.drop_var(v);
      }
    }
  }

  DecompSearch search(target_label, options);
  result.success = search.solve(current, std::move(signals), result.luts);
  result.achieved_label = search.achieved();
  result.budget_limited = search.budget_limited();
  if (!result.success) result.luts.clear();
  return result;
}

bool evaluate_decomposition(const DecompResult& result, std::uint32_t assignment) {
  TS_CHECK(!result.luts.empty(), "empty decomposition");
  std::vector<bool> lut_value(result.luts.size(), false);
  for (std::size_t i = 0; i < result.luts.size(); ++i) {
    const DecompLut& lut = result.luts[i];
    std::uint32_t local = 0;
    for (std::size_t j = 0; j < lut.fanins.size(); ++j) {
      const DecompFanin& fin = lut.fanins[j];
      const bool v = fin.kind == DecompFanin::Kind::kInput
                         ? ((assignment >> fin.index) & 1) != 0
                         : lut_value[static_cast<std::size_t>(fin.index)];
      if (v) local |= std::uint32_t{1} << j;
    }
    lut_value[i] = lut.func.bit(local);
  }
  return lut_value.back();
}

bool decomposition_matches(const DecompResult& result, const TruthTable& f) {
  const std::uint32_t total = static_cast<std::uint32_t>(f.num_bits());
  for (std::uint32_t x = 0; x < total; ++x) {
    if (evaluate_decomposition(result, x) != f.bit(x)) return false;
  }
  return true;
}

}  // namespace turbosyn
