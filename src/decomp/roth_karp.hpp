#pragma once
// Label-driven single-output functional decomposition (Roth–Karp /
// Ashenhurst–Curtis), the resynthesis engine of TurboSYN and FlowSYN.
//
// Given a cut function f over m inputs (m may exceed K, bounded by Cmax),
// an "effective label" per input (l(u) - phi*w for sequential cuts, plain
// labels for combinational FlowSYN) and a target label T, produce a DAG of
// K-input LUTs computing f such that every input i reaches the root through
// at most T - eff_label(i) LUT levels. Inputs feeding the root directly need
// eff <= T-1; inputs routed through one encoder LUT need eff <= T-2, etc.
//
// Strategy (following FlowSYN / the paper): sort inputs by increasing
// effective label; repeatedly pick a bound set B of least-critical signals
// with at least one level of slack, compute the column multiplicity mu via
// the OBDD built with B ordered first (mu = #distinct cofactors across the
// bound/free boundary), and replace B by t = ceil(log2 mu) encoder signals.
// Succeeds when at most K signals remain and the achieved label is <= T.

#include <cstdint>
#include <span>
#include <vector>

#include "base/truth_table.hpp"

namespace turbosyn {

/// Reference to a LUT fanin inside a DecompResult: either one of the
/// original cut inputs or a previously produced LUT.
struct DecompFanin {
  enum class Kind : std::uint8_t { kInput, kLut };
  Kind kind = Kind::kInput;
  int index = 0;

  static DecompFanin input(int i) { return {Kind::kInput, i}; }
  static DecompFanin lut(int i) { return {Kind::kLut, i}; }
  bool operator==(const DecompFanin&) const = default;
};

struct DecompLut {
  TruthTable func;                  // over fanins, in order
  std::vector<DecompFanin> fanins;  // size == func.num_vars() <= K
};

struct DecompResult {
  bool success = false;
  /// LUTs in topological order; the last one is the root (computes f).
  std::vector<DecompLut> luts;
  /// max over inputs of (eff_label(i) + LUT levels from i to root);
  /// meaningful only on success.
  int achieved_label = 0;
  /// True iff at least one Roth–Karp step was abandoned because the BDD node
  /// budget fired; a failure with this flag set is not a proof that no
  /// decomposition exists.
  bool budget_limited = false;
};

struct DecompOptions {
  int k = 5;               // LUT input count
  bool use_bdd = true;     // mu via OBDD (paper); false = truth-table engine
  int max_attempts = 64;   // bound-set selection attempts per round
  /// BDD node ceiling per classification (0 = the manager's default). When
  /// it fires, that bound set is treated as offering no compression and the
  /// result is marked budget_limited instead of throwing.
  std::size_t bdd_node_budget = 0;
};

/// Attempts to realize f as a DAG of K-LUTs meeting `target_label`.
/// eff_labels[i] is the effective label of input variable i of f.
DecompResult decompose_for_label(const TruthTable& f, std::span<const int> eff_labels,
                                 int target_label, const DecompOptions& options);

/// Column multiplicity of f for the bound set = variables 0..boundary-1
/// (inputs already ordered bound-first). Exposed for tests/benchmarks; both
/// engines must agree.
std::size_t column_multiplicity_bdd(const TruthTable& f, int boundary);
std::size_t column_multiplicity_tt(const TruthTable& f, int boundary);

/// Evaluates a DecompResult on a full input assignment (bit i = input i).
bool evaluate_decomposition(const DecompResult& result, std::uint32_t assignment);

/// True if the LUT DAG computes exactly f (exhaustive over f's inputs).
bool decomposition_matches(const DecompResult& result, const TruthTable& f);

}  // namespace turbosyn
