#pragma once
// Gate decomposition: rewrite a circuit so every gate has at most K fanins.
//
// The paper assumes K-bounded input circuits and points at balanced-tree
// decomposition / DMIG / DOGMA for wide gates. This pass plays that role:
// associative gates (AND/OR/XOR and their complements) become balanced
// trees; arbitrary wide functions fall back to Shannon expansion with a MUX
// tree. All flip-flops of the original fanin edges stay on the leaf edges,
// so the retiming graph semantics are preserved.

#include "netlist/circuit.hpp"

namespace turbosyn {

/// Returns a functionally equivalent circuit whose gates all have <= k
/// fanins (k >= 3 required so a 2:1 MUX fits during Shannon fallback).
Circuit gate_decompose(const Circuit& c, int k);

}  // namespace turbosyn
