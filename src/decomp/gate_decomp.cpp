#include "decomp/gate_decomp.hpp"

#include <algorithm>
#include <vector>

#include "base/check.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

enum class Assoc { kNone, kAnd, kOr, kXor };

struct AssocMatch {
  Assoc op = Assoc::kNone;
  bool inverted = false;
};

AssocMatch match_associative(const TruthTable& f) {
  const int m = f.num_vars();
  if (f == tt_and(m)) return {Assoc::kAnd, false};
  if (f == tt_nand(m)) return {Assoc::kAnd, true};
  if (f == tt_or(m)) return {Assoc::kOr, false};
  if (f == tt_nor(m)) return {Assoc::kOr, true};
  if (f == tt_xor(m)) return {Assoc::kXor, false};
  if (f == tt_xnor(m)) return {Assoc::kXor, true};
  return {};
}

TruthTable assoc_tt(Assoc op, int arity, bool inverted) {
  TruthTable t;
  switch (op) {
    case Assoc::kAnd: t = tt_and(arity); break;
    case Assoc::kOr: t = tt_or(arity); break;
    case Assoc::kXor: t = tt_xor(arity); break;
    case Assoc::kNone: TS_ASSERT(false);
  }
  return inverted ? ~t : t;
}

class Decomposer {
 public:
  Decomposer(const Circuit& in, int k) : in_(in), k_(k) {
    TS_CHECK(k >= 3, "gate decomposition requires k >= 3 (needs a 2:1 MUX)");
  }

  Circuit run() {
    for (const NodeId pi : in_.pis()) map_[pi] = out_.add_pi(in_.name(pi));
    for (NodeId v = 0; v < in_.num_nodes(); ++v) {
      if (in_.is_gate(v)) map_[v] = out_.declare_gate(in_.name(v));
    }
    for (NodeId v = 0; v < in_.num_nodes(); ++v) {
      if (in_.is_gate(v)) rebuild_gate(v);
    }
    for (const NodeId po : in_.pos()) {
      const auto& e = in_.edge(in_.fanin_edges(po)[0]);
      out_.add_po(in_.name(po), {map_.at(e.from), e.weight});
    }
    out_.validate();
    return std::move(out_);
  }

 private:
  void rebuild_gate(NodeId v) {
    std::vector<Circuit::FaninSpec> fanins;
    for (const EdgeId e : in_.fanin_edges(v)) {
      fanins.push_back({map_.at(in_.edge(e).from), in_.edge(e).weight});
    }
    const TruthTable& f = in_.function(v);
    const NodeId root = map_.at(v);
    if (f.num_vars() <= k_) {
      out_.finish_gate(root, f, fanins);
      return;
    }
    if (const AssocMatch assoc = match_associative(f); assoc.op != Assoc::kNone) {
      // Balanced tree: group children into chunks of k until they fit.
      std::vector<Circuit::FaninSpec> level = std::move(fanins);
      while (static_cast<int>(level.size()) > k_) {
        std::vector<Circuit::FaninSpec> next;
        for (std::size_t i = 0; i < level.size(); i += static_cast<std::size_t>(k_)) {
          const std::size_t chunk = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                                          level.size() - i);
          if (chunk == 1) {
            next.push_back(level[i]);
            continue;
          }
          const std::span<const Circuit::FaninSpec> group(level.data() + i, chunk);
          const NodeId g = out_.add_gate(fresh_name(v),
                                         assoc_tt(assoc.op, static_cast<int>(chunk), false),
                                         group);
          next.push_back({g, 0});
        }
        level = std::move(next);
      }
      out_.finish_gate(root, assoc_tt(assoc.op, static_cast<int>(level.size()), assoc.inverted),
                       level);
      return;
    }
    // General fallback: Shannon expansion on the last variable; the root
    // becomes a 2:1 MUX over recursively emitted cofactors.
    const int m = f.num_vars();
    const Circuit::FaninSpec sel = fanins[static_cast<std::size_t>(m - 1)];
    const std::span<const Circuit::FaninSpec> rest(fanins.data(), static_cast<std::size_t>(m - 1));
    const Circuit::FaninSpec lo = emit(f.cofactor(m - 1, false).drop_var(m - 1), rest, v);
    const Circuit::FaninSpec hi = emit(f.cofactor(m - 1, true).drop_var(m - 1), rest, v);
    const Circuit::FaninSpec mux_fanins[3] = {sel, lo, hi};
    out_.finish_gate(root, tt_mux(), mux_fanins);
  }

  /// Emits a fresh gate computing f over the given fanins, recursing while
  /// the support is wider than k. Non-support fanins are pruned first.
  Circuit::FaninSpec emit(TruthTable f, std::span<const Circuit::FaninSpec> fanins, NodeId origin) {
    std::vector<Circuit::FaninSpec> used;
    {
      const std::vector<int> support = f.support();
      for (const int s : support) used.push_back(fanins[static_cast<std::size_t>(s)]);
      for (int v = f.num_vars() - 1; v >= 0; --v) {
        if (!std::binary_search(support.begin(), support.end(), v)) f = f.drop_var(v);
      }
    }
    const int m = f.num_vars();
    if (m <= k_) {
      return {out_.add_gate(fresh_name(origin), f, used), 0};
    }
    const Circuit::FaninSpec sel = used[static_cast<std::size_t>(m - 1)];
    const std::span<const Circuit::FaninSpec> rest(used.data(), static_cast<std::size_t>(m - 1));
    const Circuit::FaninSpec lo = emit(f.cofactor(m - 1, false).drop_var(m - 1), rest, origin);
    const Circuit::FaninSpec hi = emit(f.cofactor(m - 1, true).drop_var(m - 1), rest, origin);
    const Circuit::FaninSpec mux_fanins[3] = {sel, lo, hi};
    return {out_.add_gate(fresh_name(origin), tt_mux(), mux_fanins), 0};
  }

  std::string fresh_name(NodeId origin) {
    return in_.name(origin) + "$d" + std::to_string(counter_++);
  }

  const Circuit& in_;
  Circuit out_;
  int k_;
  int counter_ = 0;
  std::unordered_map<NodeId, NodeId> map_;
};

}  // namespace

Circuit gate_decompose(const Circuit& c, int k) { return Decomposer(c, k).run(); }

}  // namespace turbosyn
