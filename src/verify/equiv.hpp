#pragma once
// Equivalence checking between circuits.
//
// - Combinational: formal, via ROBDDs built over the shared PI space (PIs
//   matched by name, POs by display name). Exact for circuits whose BDDs fit
//   the node budget — the mapped cones and test circuits here are small.
// - Sequential: bounded, from the all-zero initial state, by random
//   co-simulation with an optional warm-up (mapping absorbs registers into
//   LUTs, which perturbs the initial state as in all retiming literature).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace turbosyn {

struct EquivCounterexample {
  /// Combinational: the differing PI assignment, indexed by the first
  /// circuit's pis() order. A vector (not a packed word) so circuits with
  /// more than 64 PIs report exact counterexamples. Empty for sequential
  /// counterexamples.
  std::vector<bool> assignment;
  /// Sequential: index of the first differing cycle (0 for combinational).
  std::uint64_t cycle = 0;
  std::string po_name;
};

/// Formal combinational equivalence. Requirements: every edge weight 0 in
/// both circuits, same PI name set, same PO display-name set. Returns
/// nullopt when equivalent, else a counterexample.
std::optional<EquivCounterexample> combinational_counterexample(const Circuit& a,
                                                                const Circuit& b);
bool combinationally_equivalent(const Circuit& a, const Circuit& b);

struct SequentialCheckOptions {
  int cycles = 256;       // simulated cycles per run
  int runs = 4;           // independent random stimuli
  int warmup = 0;         // cycles ignored at the start of each run
  std::uint64_t seed = 1;
};

/// Bounded sequential check by co-simulation; nullopt when no difference was
/// found, else the first differing (cycle, PO).
std::optional<EquivCounterexample> sequential_counterexample(
    const Circuit& a, const Circuit& b, const SequentialCheckOptions& options = {});
bool sequentially_equivalent_bounded(const Circuit& a, const Circuit& b,
                                     const SequentialCheckOptions& options = {});

}  // namespace turbosyn
