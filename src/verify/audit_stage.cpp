#include "verify/audit_stage.hpp"

namespace turbosyn {

void AuditStage::run(FlowContext& ctx) {
  // finish() re-exports the ledger afterwards; doing it here too lets the
  // "probes" check audit the records mid-pipeline.
  ctx.result.probes = ctx.ledger.records();
  report_ = audit_flow(ctx.input, ctx.result, ctx.options, options_);
  if (out_ != nullptr) *out_ = report_;
  ctx.count("audit_failures", report_.failures());
}

}  // namespace turbosyn
