#include "verify/equiv.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "graph/scc.hpp"
#include "netlist/blif.hpp"
#include "sim/simulator.hpp"

namespace turbosyn {
namespace {

/// BDDs of every PO of a combinational circuit over the given PI variable
/// assignment (PI name -> BDD variable index).
std::map<std::string, BddRef> output_bdds(const Circuit& c, BddManager& mgr,
                                          const std::map<std::string, int>& pi_var) {
  std::vector<BddRef> node_bdd(static_cast<std::size_t>(c.num_nodes()), 0);
  const Digraph g = c.to_digraph();
  for (const NodeId v : topological_order(g)) {
    if (c.is_pi(v)) {
      const auto it = pi_var.find(c.name(v));
      TS_CHECK(it != pi_var.end(), "PI '" << c.name(v) << "' missing from the other circuit");
      node_bdd[static_cast<std::size_t>(v)] = mgr.var(it->second);
      continue;
    }
    if (c.is_po(v)) {
      const auto& e = c.edge(c.fanin_edges(v)[0]);
      TS_CHECK(e.weight == 0, "combinational check requires register-free circuits");
      node_bdd[static_cast<std::size_t>(v)] = node_bdd[static_cast<std::size_t>(e.from)];
      continue;
    }
    // Gate: Shannon-expand its truth table over the fanin BDDs.
    std::vector<BddRef> fanins;
    for (const EdgeId e : c.fanin_edges(v)) {
      TS_CHECK(c.edge(e).weight == 0, "combinational check requires register-free circuits");
      fanins.push_back(node_bdd[static_cast<std::size_t>(c.edge(e).from)]);
    }
    const TruthTable& f = c.function(v);
    BddRef acc = mgr.zero();
    for (std::uint32_t row = 0; row < f.num_bits(); ++row) {
      if (!f.bit(row)) continue;
      BddRef term = mgr.one();
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        const BddRef lit = ((row >> i) & 1) ? fanins[i] : mgr.bdd_not(fanins[i]);
        term = mgr.bdd_and(term, lit);
      }
      acc = mgr.bdd_or(acc, term);
    }
    node_bdd[static_cast<std::size_t>(v)] = acc;
  }
  std::map<std::string, BddRef> outputs;
  for (const NodeId po : c.pos()) {
    outputs[po_display_name(c, po)] = node_bdd[static_cast<std::size_t>(po)];
  }
  return outputs;
}

/// One satisfying assignment of a non-zero BDD (variables not on the path
/// default to 0). Returned as a vector indexed by BDD variable, so circuits
/// with more than 64 PIs report exact (untruncated) counterexamples.
std::vector<bool> any_sat(const BddManager& mgr, BddRef f) {
  std::vector<bool> assignment(static_cast<std::size_t>(mgr.num_vars()), false);
  while (!mgr.is_const(f)) {
    if (mgr.high(f) != mgr.zero()) {
      assignment[static_cast<std::size_t>(mgr.var_of(f))] = true;
      f = mgr.high(f);
    } else {
      f = mgr.low(f);
    }
  }
  return assignment;
}

}  // namespace

std::optional<EquivCounterexample> combinational_counterexample(const Circuit& a,
                                                                const Circuit& b) {
  TS_CHECK(a.num_pis() == b.num_pis(), "PI count mismatch");
  std::map<std::string, int> pi_var;
  for (const NodeId pi : a.pis()) {
    pi_var.emplace(a.name(pi), static_cast<int>(pi_var.size()));
  }
  BddManager mgr(static_cast<int>(pi_var.size()));
  const auto out_a = output_bdds(a, mgr, pi_var);
  const auto out_b = output_bdds(b, mgr, pi_var);
  TS_CHECK(out_a.size() == out_b.size(), "PO count mismatch");
  for (const auto& [name, fa] : out_a) {
    const auto it = out_b.find(name);
    TS_CHECK(it != out_b.end(), "PO '" << name << "' missing from the other circuit");
    const BddRef miter = mgr.bdd_xor(fa, it->second);
    if (miter != mgr.zero()) {
      EquivCounterexample cex;
      cex.assignment = any_sat(mgr, miter);
      cex.po_name = name;
      return cex;
    }
  }
  return std::nullopt;
}

bool combinationally_equivalent(const Circuit& a, const Circuit& b) {
  return !combinational_counterexample(a, b).has_value();
}

std::optional<EquivCounterexample> sequential_counterexample(
    const Circuit& a, const Circuit& b, const SequentialCheckOptions& options) {
  TS_CHECK(a.num_pis() == b.num_pis(), "PI count mismatch");
  TS_CHECK(a.num_pos() == b.num_pos(), "PO count mismatch");
  // Match PIs and POs by name, as the combinational check does: two
  // equivalent circuits may declare them in different orders (e.g. after
  // mapping or a round-trip through BLIF), and a positional comparison would
  // report a spurious mismatch.
  std::vector<std::size_t> pi_in_b(static_cast<std::size_t>(a.num_pis()));
  {
    std::map<std::string, std::size_t> b_pi;
    for (std::size_t i = 0; i < b.pis().size(); ++i) b_pi[b.name(b.pis()[i])] = i;
    for (std::size_t i = 0; i < a.pis().size(); ++i) {
      const auto it = b_pi.find(a.name(a.pis()[i]));
      TS_CHECK(it != b_pi.end(),
               "PI '" << a.name(a.pis()[i]) << "' missing from the other circuit");
      pi_in_b[i] = it->second;
    }
  }
  std::vector<std::size_t> po_in_b(static_cast<std::size_t>(a.num_pos()));
  {
    std::map<std::string, std::size_t> b_po;
    for (std::size_t o = 0; o < b.pos().size(); ++o) {
      const auto [it, inserted] = b_po.emplace(po_display_name(b, b.pos()[o]), o);
      TS_CHECK(inserted, "duplicate PO name '" << it->first << "'");
    }
    for (std::size_t o = 0; o < a.pos().size(); ++o) {
      const std::string name = po_display_name(a, a.pos()[o]);
      const auto it = b_po.find(name);
      TS_CHECK(it != b_po.end(), "PO '" << name << "' missing from the other circuit");
      po_in_b[o] = it->second;
    }
  }
  Rng rng(options.seed);
  for (int run = 0; run < options.runs; ++run) {
    const auto stimulus = random_stimulus(rng, a.num_pis(), options.cycles);
    auto stimulus_b = stimulus;
    for (std::size_t t = 0; t < stimulus.size(); ++t) {
      for (std::size_t i = 0; i < pi_in_b.size(); ++i) {
        stimulus_b[t][pi_in_b[i]] = stimulus[t][i];
      }
    }
    const auto out_a = simulate_sequence(a, stimulus);
    const auto out_b = simulate_sequence(b, stimulus_b);
    for (int t = options.warmup; t < options.cycles; ++t) {
      for (std::size_t o = 0; o < out_a[static_cast<std::size_t>(t)].size(); ++o) {
        if (out_a[static_cast<std::size_t>(t)][o] !=
            out_b[static_cast<std::size_t>(t)][po_in_b[o]]) {
          EquivCounterexample cex;
          cex.cycle = static_cast<std::uint64_t>(t);
          cex.po_name = po_display_name(a, a.pos()[o]);
          return cex;
        }
      }
    }
  }
  return std::nullopt;
}

bool sequentially_equivalent_bounded(const Circuit& a, const Circuit& b,
                                     const SequentialCheckOptions& options) {
  return !sequential_counterexample(a, b, options).has_value();
}

}  // namespace turbosyn
