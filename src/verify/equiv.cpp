#include "verify/equiv.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "graph/scc.hpp"
#include "netlist/blif.hpp"
#include "sim/simulator.hpp"

namespace turbosyn {
namespace {

/// BDDs of every PO of a combinational circuit over the given PI variable
/// assignment (PI name -> BDD variable index).
std::map<std::string, BddRef> output_bdds(const Circuit& c, BddManager& mgr,
                                          const std::map<std::string, int>& pi_var) {
  std::vector<BddRef> node_bdd(static_cast<std::size_t>(c.num_nodes()), 0);
  const Digraph g = c.to_digraph();
  for (const NodeId v : topological_order(g)) {
    if (c.is_pi(v)) {
      const auto it = pi_var.find(c.name(v));
      TS_CHECK(it != pi_var.end(), "PI '" << c.name(v) << "' missing from the other circuit");
      node_bdd[static_cast<std::size_t>(v)] = mgr.var(it->second);
      continue;
    }
    if (c.is_po(v)) {
      const auto& e = c.edge(c.fanin_edges(v)[0]);
      TS_CHECK(e.weight == 0, "combinational check requires register-free circuits");
      node_bdd[static_cast<std::size_t>(v)] = node_bdd[static_cast<std::size_t>(e.from)];
      continue;
    }
    // Gate: Shannon-expand its truth table over the fanin BDDs.
    std::vector<BddRef> fanins;
    for (const EdgeId e : c.fanin_edges(v)) {
      TS_CHECK(c.edge(e).weight == 0, "combinational check requires register-free circuits");
      fanins.push_back(node_bdd[static_cast<std::size_t>(c.edge(e).from)]);
    }
    const TruthTable& f = c.function(v);
    BddRef acc = mgr.zero();
    for (std::uint32_t row = 0; row < f.num_bits(); ++row) {
      if (!f.bit(row)) continue;
      BddRef term = mgr.one();
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        const BddRef lit = ((row >> i) & 1) ? fanins[i] : mgr.bdd_not(fanins[i]);
        term = mgr.bdd_and(term, lit);
      }
      acc = mgr.bdd_or(acc, term);
    }
    node_bdd[static_cast<std::size_t>(v)] = acc;
  }
  std::map<std::string, BddRef> outputs;
  for (const NodeId po : c.pos()) {
    outputs[po_display_name(c, po)] = node_bdd[static_cast<std::size_t>(po)];
  }
  return outputs;
}

/// One satisfying assignment of a non-zero BDD (variables not on the path
/// default to 0).
std::uint64_t any_sat(const BddManager& mgr, BddRef f) {
  std::uint64_t assignment = 0;
  while (!mgr.is_const(f)) {
    if (mgr.high(f) != mgr.zero()) {
      assignment |= std::uint64_t{1} << mgr.var_of(f);
      f = mgr.high(f);
    } else {
      f = mgr.low(f);
    }
  }
  return assignment;
}

}  // namespace

std::optional<EquivCounterexample> combinational_counterexample(const Circuit& a,
                                                                const Circuit& b) {
  TS_CHECK(a.num_pis() == b.num_pis(), "PI count mismatch");
  std::map<std::string, int> pi_var;
  for (const NodeId pi : a.pis()) {
    pi_var.emplace(a.name(pi), static_cast<int>(pi_var.size()));
  }
  BddManager mgr(static_cast<int>(pi_var.size()));
  const auto out_a = output_bdds(a, mgr, pi_var);
  const auto out_b = output_bdds(b, mgr, pi_var);
  TS_CHECK(out_a.size() == out_b.size(), "PO count mismatch");
  for (const auto& [name, fa] : out_a) {
    const auto it = out_b.find(name);
    TS_CHECK(it != out_b.end(), "PO '" << name << "' missing from the other circuit");
    const BddRef miter = mgr.bdd_xor(fa, it->second);
    if (miter != mgr.zero()) {
      return EquivCounterexample{any_sat(mgr, miter), name};
    }
  }
  return std::nullopt;
}

bool combinationally_equivalent(const Circuit& a, const Circuit& b) {
  return !combinational_counterexample(a, b).has_value();
}

std::optional<EquivCounterexample> sequential_counterexample(
    const Circuit& a, const Circuit& b, const SequentialCheckOptions& options) {
  TS_CHECK(a.num_pis() == b.num_pis(), "PI count mismatch");
  TS_CHECK(a.num_pos() == b.num_pos(), "PO count mismatch");
  Rng rng(options.seed);
  for (int run = 0; run < options.runs; ++run) {
    const auto stimulus = random_stimulus(rng, a.num_pis(), options.cycles);
    const auto out_a = simulate_sequence(a, stimulus);
    const auto out_b = simulate_sequence(b, stimulus);
    for (int t = options.warmup; t < options.cycles; ++t) {
      if (out_a[static_cast<std::size_t>(t)] == out_b[static_cast<std::size_t>(t)]) continue;
      for (std::size_t o = 0; o < out_a[static_cast<std::size_t>(t)].size(); ++o) {
        if (out_a[static_cast<std::size_t>(t)][o] != out_b[static_cast<std::size_t>(t)][o]) {
          return EquivCounterexample{static_cast<std::uint64_t>(t),
                                     po_display_name(a, a.pos()[o])};
        }
      }
    }
  }
  return std::nullopt;
}

bool sequentially_equivalent_bounded(const Circuit& a, const Circuit& b,
                                     const SequentialCheckOptions& options) {
  return !sequential_counterexample(a, b, options).has_value();
}

}  // namespace turbosyn
