#pragma once
// AuditStage: run the invariant auditor as the last stage of a flow
// pipeline, so its verdict lands in the same StageMetrics/trace timeline as
// the stages it re-checks.

#include "core/driver.hpp"
#include "verify/audit.hpp"

namespace turbosyn {

/// Runs audit_flow() on the driver's in-flight result (after the timing
/// stage finalized it). Exports the probe ledger into the result first, so
/// the "probes" check sees the full ledger even before FlowDriver::finish().
/// The report is kept on the stage (and optionally copied to `out`); the
/// stage itself never throws on a failed audit — callers inspect
/// report().passed().
class AuditStage final : public Stage {
 public:
  explicit AuditStage(AuditOptions options = {}, AuditReport* out = nullptr)
      : options_(options), out_(out) {}

  const char* name() const override { return "audit"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kTiming}; }
  std::vector<ArtifactId> produces() const override { return {}; }
  void run(FlowContext& ctx) override;

  const AuditReport& report() const { return report_; }

 private:
  AuditOptions options_;
  AuditReport* out_;
  AuditReport report_;
};

}  // namespace turbosyn
