#pragma once
// Stage-by-stage invariant auditor for the synthesis flows.
//
// TurboSYN's claim is conditional correctness: the mapped K-LUT network must
// be functionally equivalent to the input under retiming/pipelining, and its
// MDR ratio must actually meet the phi the label engine certified. The
// auditor takes the artifacts a flow already produced (FlowResult, plus
// FlowArtifacts when FlowOptions::collect_artifacts was set) and
// independently re-derives every claimed property:
//
//   containment  (failed runs only) the containment record is coherent — a
//                failing stage is named iff status == kFailed — and every
//                product check is skipped, since a contained failure has no
//                result to verify; recovered/retried runs that ultimately
//                succeeded carry ordinary statuses and audit as clean runs;
//   structure    the mapped network validates and is K-bounded;
//   interface    PI names and PO display names match the input;
//   labels       the label vector is a fixpoint of the Bellman-style
//                inequalities for the certified phi;
//   cuts         each recorded realization's cut covers the root's fanin
//                frontier in the expanded (time-unfolded) graph, bounds a
//                finite cone, is K-feasible, computes exactly the cone
//                function, and its recomputed height respects the record;
//   mdr          the mapped network's MDR ratio, recomputed from scratch
//                with Howard's policy iteration (an engine independent of
//                the flow's Bellman–Ford search), is <= the certified phi
//                and equal to the claimed exact value;
//   period       the claimed (clock period, pipeline stages) pair is
//                achievable: a legal retiming exists, re-checked edge by
//                edge (w(e) + r(v) - r(u) >= 0, zero lags on PIs/POs), and
//                the retimed period is independently recomputed;
//   equivalence  the mapped network is zero-state equivalent to the input
//                (BDD miter when both are register-free, bounded sequential
//                co-simulation with warm-up otherwise);
//   probes       the probe ledger is consistent: no (mode, phi) probed
//                twice, no probe more degraded than the flow's own status,
//                the winning phi backed by a feasible record whose label
//                hash matches the collected artifacts, and — on an exact
//                run — a rejection witness at phi - 1 proving minimality;
//   stage-timing the per-stage wall times are non-negative and sum to at
//                most the flow's total wall time (5% tolerance).
//
// Each stage audit is also exposed on its own so tests can seed deliberate
// violations (a broken cut, an illegal retiming, a phi-violating loop) and
// assert the auditor catches them.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/rational.hpp"
#include "core/flows.hpp"
#include "core/mapgen.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

enum class AuditStatus : std::uint8_t { kPass, kFail, kSkipped };
const char* audit_status_name(AuditStatus s);

struct AuditCheck {
  std::string name;
  AuditStatus status = AuditStatus::kPass;
  std::string detail;  // failure diagnostic or skip reason
};

struct AuditReport {
  std::vector<AuditCheck> checks;
  bool passed() const;  // true iff no check failed (skips do not fail)
  int failures() const;
  /// Structured pass/fail breakdown, one line per check.
  std::string breakdown() const;
};

struct AuditOptions {
  /// Bounded sequential equivalence parameters.
  int seq_cycles = 160;
  int seq_runs = 3;
  /// Warm-up cycles ignored before comparing. 0 derives the bound: exactly 0
  /// for pipeline-mode flows (zero-state-safe cuts make the un-retimed
  /// mapped network exact from cycle 0), or a transient scaled to the
  /// deepest register chain for clock-period mode, whose result is retimed
  /// in place and may legitimately start from a shifted state.
  int seq_warmup = 0;
  std::uint64_t seq_seed = 7;
  bool check_equivalence = true;  // the most expensive stage
  /// Expanded-cone node ceiling per mapping record; exceeding it fails the
  /// record (a frontier-covering cut always bounds a finite cone).
  int cone_node_budget = 50000;
};

// ---- Stage audits: nullopt = invariant holds, else a diagnostic. ----

/// Retiming legality: one lag per node, w(e) + r(to) - r(from) >= 0 on every
/// edge, and r == 0 on `pinned` nodes (I/O latency preserved).
std::optional<std::string> audit_retiming_legality(const Circuit& c, std::span<const int> r,
                                                   std::span<const NodeId> pinned);

/// Label-fixpoint consistency at ratio phi: sources are 0; a gate v with
/// fanins lies in [max(1, L(v)), max(1, L(v) + 1)] for
/// L(v) = max over fanin edges e(u,v) of l(u) - phi*w(e); a PO is exactly
/// max(0, L(po)).
std::optional<std::string> audit_labels(const Circuit& c, std::span<const int> labels, int phi);

/// One mapping record against the input circuit: the cut covers the root's
/// fanin frontier (every backward path in the expanded graph hits the cut
/// before a PI), the cone it bounds is finite, the realization is
/// K-feasible, its LUT network computes exactly the cone function, and the
/// height recomputed from the labels does not exceed the recorded one.
std::optional<std::string> audit_mapping_record(const Circuit& c, std::span<const int> labels,
                                                int phi, int k, const MappingRecord& record,
                                                int cone_node_budget = 50000);

/// MDR of `mapped` recomputed from scratch with Howard's policy iteration
/// (and its critical-cycle witness re-measured edge by edge): must equal
/// `claimed` and be <= phi.
std::optional<std::string> audit_mdr(const Circuit& mapped, int phi, const Rational& claimed);

/// Claimed (period, stages): pipelining `mapped` by `stages` input/output
/// register stages must admit a legal retiming achieving `period`,
/// re-checked edge by edge with the period independently recomputed, and
/// `period` must respect the MDR lower bound.
std::optional<std::string> audit_period(const Circuit& mapped, std::int64_t period, int stages);

/// Full post-flow audit of `result` for `input`. Stages whose artifacts are
/// absent (FlowSYN-s, collect_artifacts off, pipelining disabled) report
/// kSkipped, never a silent pass.
AuditReport audit_flow(const Circuit& input, const FlowResult& result,
                       const FlowOptions& options, const AuditOptions& audit = {});

// ---- CLI conveniences shared by the example/bench mains. ----

/// True when `--audit` appears in argv (a value-less flag).
bool audit_flag_from_cli(int argc, char** argv);

/// One-line usage blurb for the --audit flag.
const char* audit_cli_help();

/// Runs audit_flow and streams "audit <tag>: PASS/FAIL" plus the per-check
/// breakdown to `os`; returns report.passed().
bool audit_and_report(const Circuit& input, const FlowResult& result,
                      const FlowOptions& options, const std::string& tag, std::ostream& os,
                      const AuditOptions& audit = {});

}  // namespace turbosyn
