#include "verify/audit.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "base/check.hpp"
#include "core/engines.hpp"
#include "decomp/roth_karp.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/howard.hpp"
#include "retime/pipeline.hpp"
#include "retime/retiming.hpp"
#include "verify/equiv.hpp"

namespace turbosyn {
namespace {

std::vector<int> unit_delays(const Circuit& c) {
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    delay[static_cast<std::size_t>(v)] = c.delay(v);
  }
  return delay;
}

std::string seq_node_name(const Circuit& c, const SeqCutNode& n) {
  std::ostringstream os;
  os << '\'' << c.name(n.node) << "'^" << n.w;
  return os.str();
}

/// Fanin bound L(v) = max over fanin edges e(u,v) of l(u) - phi*w(e),
/// re-derived here so the audit does not share code with the label engine.
std::int64_t fanin_bound(const Circuit& c, std::span<const int> labels, int phi, NodeId v) {
  std::int64_t best = INT64_MIN;
  for (const EdgeId e : c.fanin_edges(v)) {
    const Circuit::Edge& edge = c.edge(e);
    best = std::max(best, static_cast<std::int64_t>(labels[static_cast<std::size_t>(edge.from)]) -
                              static_cast<std::int64_t>(phi) * edge.weight);
  }
  return best;
}

/// LUT levels from each cut input to the root of a realization (1 for plain
/// cuts); recomputed from the decomposition DAG, independent of mapgen.
std::vector<int> input_depths(const NodeRealization& real) {
  std::vector<int> depth(real.cut.size(), 1);
  if (!real.decomp.has_value()) return depth;
  const auto& luts = real.decomp->luts;
  std::vector<int> dist(luts.size(), 0);  // LUT j's output -> root output
  for (std::size_t j = luts.size(); j-- > 0;) {
    for (const DecompFanin& fin : luts[j].fanins) {
      if (fin.kind == DecompFanin::Kind::kLut) {
        auto& d = dist[static_cast<std::size_t>(fin.index)];
        d = std::max(d, dist[j] + 1);
      }
    }
  }
  std::fill(depth.begin(), depth.end(), 0);
  for (std::size_t j = 0; j < luts.size(); ++j) {
    for (const DecompFanin& fin : luts[j].fanins) {
      if (fin.kind == DecompFanin::Kind::kInput) {
        auto& d = depth[static_cast<std::size_t>(fin.index)];
        d = std::max(d, dist[j] + 1);
      }
    }
  }
  return depth;
}

/// Settle time for the bounded sequential check. Zero-state-safe cut
/// selection (see expanded.hpp) makes the un-retimed mapped network exact
/// from cycle 0, so for pipeline-mode flows (which keep result.mapped
/// un-retimed) the audit demands warmup 0 — catching any regression of that
/// guarantee. Clock-period mode retimes result.mapped in place, and
/// retiming legitimately shifts initial states, so those keep a transient
/// scaled to the deepest register chain.
int derived_warmup(const Circuit& a, const Circuit& b, bool mapped_retimed, int cycles) {
  if (!mapped_retimed) return 0;
  int max_w = 0;
  for (EdgeId e = 0; e < a.num_edges(); ++e) max_w = std::max(max_w, a.edge(e).weight);
  for (EdgeId e = 0; e < b.num_edges(); ++e) max_w = std::max(max_w, b.edge(e).weight);
  return std::min(16 + 4 * max_w, cycles / 2);
}

}  // namespace

const char* audit_status_name(AuditStatus s) {
  switch (s) {
    case AuditStatus::kPass:
      return "PASS";
    case AuditStatus::kFail:
      return "FAIL";
    case AuditStatus::kSkipped:
      return "SKIP";
  }
  return "?";
}

bool AuditReport::passed() const { return failures() == 0; }

int AuditReport::failures() const {
  int n = 0;
  for (const AuditCheck& c : checks) {
    if (c.status == AuditStatus::kFail) ++n;
  }
  return n;
}

std::string AuditReport::breakdown() const {
  std::ostringstream os;
  for (const AuditCheck& c : checks) {
    os << "  [" << audit_status_name(c.status) << "] " << c.name;
    if (!c.detail.empty()) os << " — " << c.detail;
    os << '\n';
  }
  return os.str();
}

std::optional<std::string> audit_retiming_legality(const Circuit& c, std::span<const int> r,
                                                   std::span<const NodeId> pinned) {
  if (static_cast<int>(r.size()) != c.num_nodes()) {
    return "retiming has " + std::to_string(r.size()) + " lags for " +
           std::to_string(c.num_nodes()) + " nodes";
  }
  for (const NodeId p : pinned) {
    if (r[static_cast<std::size_t>(p)] != 0) {
      return "pinned node '" + c.name(p) + "' has nonzero lag " +
             std::to_string(r[static_cast<std::size_t>(p)]);
    }
  }
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    const Circuit::Edge& edge = c.edge(e);
    const std::int64_t w = static_cast<std::int64_t>(edge.weight) +
                           r[static_cast<std::size_t>(edge.to)] -
                           r[static_cast<std::size_t>(edge.from)];
    if (w < 0) {
      return "edge '" + c.name(edge.from) + "' -> '" + c.name(edge.to) +
             "' retimed to negative weight " + std::to_string(w);
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_labels(const Circuit& c, std::span<const int> labels,
                                        int phi) {
  if (static_cast<int>(labels.size()) != c.num_nodes()) {
    return "label vector has " + std::to_string(labels.size()) + " entries for " +
           std::to_string(c.num_nodes()) + " nodes";
  }
  if (phi < 1) return "certified phi " + std::to_string(phi) + " < 1";
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    const std::int64_t l = labels[static_cast<std::size_t>(v)];
    if (c.is_source(v)) {
      if (l != 0) {
        return "source '" + c.name(v) + "' has label " + std::to_string(l) + " (expected 0)";
      }
      continue;
    }
    const std::int64_t bound = fanin_bound(c, labels, phi, v);
    if (c.is_po(v)) {
      const std::int64_t expected = std::max<std::int64_t>(0, bound);
      if (l != expected) {
        return "PO '" + c.name(v) + "' has label " + std::to_string(l) + " (expected " +
               std::to_string(expected) + ")";
      }
      continue;
    }
    // Gate with fanins: converged labels satisfy max(1, L(v)) <= l(v) <=
    // max(1, L(v) + 1) — below the bound another sweep would still raise
    // l(v); above L(v)+1 the iteration overshot (it only ever assigns L or
    // L+1 and lower bounds only grow).
    const std::int64_t lo = std::max<std::int64_t>(1, bound);
    const std::int64_t hi = std::max<std::int64_t>(1, bound + 1);
    if (l < lo || l > hi) {
      return "gate '" + c.name(v) + "' has label " + std::to_string(l) +
             " outside [" + std::to_string(lo) + ", " + std::to_string(hi) +
             "] for fanin bound " + std::to_string(bound);
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_mapping_record(const Circuit& c, std::span<const int> labels,
                                                int phi, int k, const MappingRecord& rec,
                                                int cone_node_budget) {
  const NodeId root = rec.root;
  if (root < 0 || root >= c.num_nodes() || !c.is_gate(root) || c.fanin_edges(root).empty()) {
    return "record root is not a mappable gate";
  }
  const auto& cut = rec.real.cut;
  if (cut.empty()) return "empty cut at root '" + c.name(root) + "'";
  if (cut.size() > 16) {
    return "cut of width " + std::to_string(cut.size()) + " at root '" + c.name(root) +
           "' exceeds the auditable limit (16)";
  }

  // K-feasibility and internal consistency of the realization.
  if (!rec.real.decomp.has_value()) {
    if (static_cast<int>(cut.size()) > k) {
      return "plain cut of width " + std::to_string(cut.size()) + " at root '" +
             c.name(root) + "' exceeds K=" + std::to_string(k);
    }
    if (rec.real.func.num_vars() != static_cast<int>(cut.size())) {
      return "LUT function arity " + std::to_string(rec.real.func.num_vars()) +
             " does not match cut width " + std::to_string(cut.size()) + " at root '" +
             c.name(root) + "'";
    }
  } else {
    const auto& luts = rec.real.decomp->luts;
    if (luts.empty()) return "decomposition with no LUTs at root '" + c.name(root) + "'";
    for (std::size_t j = 0; j < luts.size(); ++j) {
      if (static_cast<int>(luts[j].fanins.size()) > k) {
        return "decomposition LUT " + std::to_string(j) + " at root '" + c.name(root) +
               "' has " + std::to_string(luts[j].fanins.size()) + " fanins (K=" +
               std::to_string(k) + ")";
      }
      if (luts[j].func.num_vars() != static_cast<int>(luts[j].fanins.size())) {
        return "decomposition LUT " + std::to_string(j) + " arity mismatch at root '" +
               c.name(root) + "'";
      }
      for (const DecompFanin& fin : luts[j].fanins) {
        const bool ok = fin.kind == DecompFanin::Kind::kInput
                            ? fin.index >= 0 && fin.index < static_cast<int>(cut.size())
                            : fin.index >= 0 && fin.index < static_cast<int>(j);
        if (!ok) {
          return "decomposition LUT " + std::to_string(j) + " has an out-of-range fanin at root '" +
                 c.name(root) + "'";
        }
      }
    }
  }

  // Cut sanity + index for the cone walk.
  std::map<SeqCutNode, int> cut_index;
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const SeqCutNode& n = cut[i];
    if (n.node < 0 || n.node >= c.num_nodes() || n.w < 0) {
      return "cut node out of range at root '" + c.name(root) + "'";
    }
    if (!cut_index.emplace(n, static_cast<int>(i)).second) {
      return "duplicate cut node " + seq_node_name(c, n) + " at root '" + c.name(root) + "'";
    }
  }
  if (cut_index.count(SeqCutNode{root, 0})) {
    return "cut contains the root itself at '" + c.name(root) + "'";
  }

  // Expanded cone: walk back from (root, 0), stopping at cut nodes. Every
  // backward path must hit the cut before a PI, and the cone must stay
  // finite (a covering cut guarantees both; registered loops raise w each
  // lap, so escaping paths blow the node budget and are reported).
  struct ConeNode {
    SeqCutNode at;
    int cut_pos = -1;         // >= 0: cut input (leaf)
    std::vector<int> fanins;  // cone indices, in the gate's fanin slot order
  };
  std::vector<ConeNode> cone;
  std::map<SeqCutNode, int> cone_index;
  const auto intern = [&](SeqCutNode at) {
    const auto [it, inserted] = cone_index.emplace(at, static_cast<int>(cone.size()));
    if (inserted) cone.push_back(ConeNode{at, -1, {}});
    return it->second;
  };
  intern(SeqCutNode{root, 0});
  for (std::size_t i = 0; i < cone.size(); ++i) {
    if (static_cast<int>(cone.size()) > cone_node_budget) {
      return "expanded cone at root '" + c.name(root) + "' exceeds " +
             std::to_string(cone_node_budget) + " nodes — the cut does not cover the fanin frontier";
    }
    const SeqCutNode at = cone[i].at;
    if (const auto it = cut_index.find(at); it != cut_index.end()) {
      cone[i].cut_pos = it->second;
      continue;
    }
    if (c.is_pi(at.node)) {
      return "cut at root '" + c.name(root) + "' misses PI copy " + seq_node_name(c, at) +
             " — the fanin frontier is not covered";
    }
    if (c.is_po(at.node)) {
      return "PO copy " + seq_node_name(c, at) + " inside the cone of root '" + c.name(root) + "'";
    }
    // Zero-state safety: an interior copy at w >= 1 is recomputed for early
    // cycles from pre-history zeros, so its function must map the all-zero
    // input to 0 (the value its register would have held); otherwise the
    // mapped network boots into a state the original never visits.
    if (at.w > 0 && c.function(at.node).bit(0)) {
      return "zero-state-unsafe interior copy " + seq_node_name(c, at) + " in the cone of root '" +
             c.name(root) + "': its function is 1 on all-zero inputs, so recomputing it across " +
             std::to_string(at.w) + " register(s) diverges from the power-up state";
    }
    // Interior gate (constants evaluate from their 0-ary function).
    std::vector<int> fanins;
    fanins.reserve(c.fanin_edges(at.node).size());
    for (const EdgeId e : c.fanin_edges(at.node)) {
      const Circuit::Edge& edge = c.edge(e);
      fanins.push_back(intern(SeqCutNode{edge.from, at.w + edge.weight}));
    }
    cone[i].fanins = std::move(fanins);
  }

  // Topological order (children before parents) via iterative DFS; a cycle
  // here would mean a zero-register loop, which validate() rejects upstream.
  std::vector<std::uint8_t> mark(cone.size(), 0);  // 0 white, 1 gray, 2 black
  std::vector<int> order;
  order.reserve(cone.size());
  {
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(0, 0);
    mark[0] = 1;
    while (!stack.empty()) {
      const int n = stack.back().first;
      const std::size_t next = stack.back().second;
      if (next < cone[static_cast<std::size_t>(n)].fanins.size()) {
        ++stack.back().second;
        const int child = cone[static_cast<std::size_t>(n)].fanins[next];
        if (mark[static_cast<std::size_t>(child)] == 0) {
          mark[static_cast<std::size_t>(child)] = 1;
          stack.emplace_back(child, 0);
        } else if (mark[static_cast<std::size_t>(child)] == 1) {
          return "combinational cycle inside the cone of root '" + c.name(root) + "'";
        }
      } else {
        mark[static_cast<std::size_t>(n)] = 2;
        order.push_back(n);
        stack.pop_back();
      }
    }
  }

  // Functional equality: the realization (single LUT or decomposition DAG)
  // must compute exactly the cone's composition for every cut assignment.
  std::vector<std::uint8_t> value(cone.size(), 0);
  const std::uint32_t num_assignments = std::uint32_t{1} << cut.size();
  for (std::uint32_t m = 0; m < num_assignments; ++m) {
    for (const int idx : order) {
      const ConeNode& n = cone[static_cast<std::size_t>(idx)];
      if (n.cut_pos >= 0) {
        value[static_cast<std::size_t>(idx)] =
            static_cast<std::uint8_t>((m >> n.cut_pos) & 1u);
        continue;
      }
      const TruthTable& f = c.function(n.at.node);
      std::uint32_t row = 0;
      for (std::size_t i = 0; i < n.fanins.size(); ++i) {
        row |= static_cast<std::uint32_t>(value[static_cast<std::size_t>(n.fanins[i])]) << i;
      }
      value[static_cast<std::size_t>(idx)] = f.bit(row) ? 1 : 0;
    }
    const bool cone_value = value[0] != 0;
    const bool lut_value = rec.real.decomp.has_value()
                               ? evaluate_decomposition(*rec.real.decomp, m)
                               : rec.real.func.bit(m);
    if (cone_value != lut_value) {
      return "realization at root '" + c.name(root) + "' disagrees with its cone on cut assignment " +
             std::to_string(m);
    }
  }

  // Height consistency: every cut input's effective label plus its LUT depth
  // must fit under the recorded height (labels may predate relaxation, which
  // only ever raises heights — so <= is the invariant).
  const std::vector<int> depth = input_depths(rec.real);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const std::int64_t eff =
        static_cast<std::int64_t>(labels[static_cast<std::size_t>(cut[i].node)]) -
        static_cast<std::int64_t>(phi) * cut[i].w;
    if (eff + depth[i] > rec.height) {
      return "cut input " + seq_node_name(c, cut[i]) + " at root '" + c.name(root) +
             "' has effective label " + std::to_string(eff) + " and depth " +
             std::to_string(depth[i]) + ", exceeding the recorded height " +
             std::to_string(rec.height);
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_mdr(const Circuit& mapped, int phi, const Rational& claimed) {
  const std::vector<int> delay = unit_delays(mapped);
  CycleRatioResult howard;
  try {
    howard = max_cycle_ratio_howard(mapped.to_digraph(), delay);
  } catch (const Error& e) {
    return std::string("Howard recomputation failed: ") + e.what();
  }
  if (howard.ratio != claimed) {
    return "claimed exact MDR " + claimed.to_string() + " but Howard recomputes " +
           howard.ratio.to_string();
  }
  if (howard.ratio > Rational(phi)) {
    return "mapped MDR " + howard.ratio.to_string() + " exceeds the certified phi " +
           std::to_string(phi);
  }
  // Re-measure the critical-cycle witness edge by edge.
  if (!howard.critical_cycle.empty()) {
    const Digraph g = mapped.to_digraph();
    std::int64_t total_delay = 0;
    std::int64_t total_weight = 0;
    for (std::size_t i = 0; i < howard.critical_cycle.size(); ++i) {
      const Digraph::Edge& e = g.edge(howard.critical_cycle[i]);
      const Digraph::Edge& next =
          g.edge(howard.critical_cycle[(i + 1) % howard.critical_cycle.size()]);
      if (e.to != next.from) return "critical-cycle witness is not a closed cycle";
      total_delay += delay[static_cast<std::size_t>(e.to)];
      total_weight += e.weight;
    }
    if (total_weight <= 0) return "critical-cycle witness has no registers";
    if (Rational(total_delay, total_weight) != howard.ratio) {
      return "critical-cycle witness measures " +
             Rational(total_delay, total_weight).to_string() + ", not the claimed ratio " +
             howard.ratio.to_string();
    }
  } else if (howard.ratio != Rational(0)) {
    return "nonzero MDR reported without a critical-cycle witness";
  }
  return std::nullopt;
}

std::optional<std::string> audit_period(const Circuit& mapped, std::int64_t period, int stages) {
  if (period <= 0) return "claimed clock period " + std::to_string(period) + " is not positive";
  if (stages < 0) return "negative pipeline depth " + std::to_string(stages);
  const std::vector<int> delay = unit_delays(mapped);
  Rational mdr;
  try {
    mdr = max_cycle_ratio_howard(mapped.to_digraph(), delay).ratio;
  } catch (const Error& e) {
    return std::string("MDR recomputation failed: ") + e.what();
  }
  if (Rational(period) < mdr) {
    return "claimed period " + std::to_string(period) + " is below the MDR lower bound " +
           mdr.to_string();
  }
  // Reproduce the claimed configuration and re-verify it end to end: the
  // pipelined network must admit a retiming that is legal edge by edge and
  // whose period, recomputed from scratch, meets the claim.
  Circuit pipelined = mapped;
  pipeline_inputs(pipelined, stages);
  pipeline_outputs(pipelined, stages);
  std::vector<NodeId> pinned(pipelined.pis().begin(), pipelined.pis().end());
  pinned.insert(pinned.end(), pipelined.pos().begin(), pipelined.pos().end());
  const auto r = feasible_retiming(pipelined.to_digraph(), delay, period, pinned);
  if (!r.has_value()) {
    return "no legal retiming achieves period " + std::to_string(period) + " with " +
           std::to_string(stages) + " pipeline stage(s)";
  }
  if (auto bad = audit_retiming_legality(pipelined, *r, pinned)) return bad;
  apply_retiming(pipelined, *r);
  const std::int64_t achieved = circuit_clock_period(pipelined);
  if (achieved > period) {
    return "retimed network has period " + std::to_string(achieved) +
           ", above the claimed " + std::to_string(period);
  }
  return std::nullopt;
}

AuditReport audit_flow(const Circuit& input, const FlowResult& result,
                       const FlowOptions& options, const AuditOptions& audit) {
  AuditReport report;
  const auto add = [&report](std::string name, AuditStatus status, std::string detail = "") {
    report.checks.push_back(AuditCheck{std::move(name), status, std::move(detail)});
  };
  const auto add_outcome = [&](std::string name, const std::optional<std::string>& failure,
                               std::string pass_detail = "") {
    if (failure.has_value()) {
      add(std::move(name), AuditStatus::kFail, *failure);
    } else {
      add(std::move(name), AuditStatus::kPass, std::move(pass_detail));
    }
  };
  const Circuit& mapped = result.mapped;

  // containment: a contained stage failure (status == kFailed) is not a
  // result — the audit verifies the containment record is coherent (a
  // failing stage is named iff the status says so) and skips every product
  // check, since there is no product to verify. Runs that merely recovered
  // (cache demotions to misses, batch retries that then succeeded) carry an
  // ordinary status and audit as clean runs; this branch never sees them.
  if (result.status == Status::kFailed || !result.failed_stage.empty()) {
    std::optional<std::string> failure;
    if (result.status != Status::kFailed) {
      failure = "failing stage '" + result.failed_stage + "' recorded on a " +
                std::string(status_name(result.status)) + " result";
    } else if (result.failed_stage.empty()) {
      failure = "status is failed but no failing stage was recorded";
    }
    add_outcome("containment", failure,
                "stage '" + result.failed_stage + "' contained: " + result.failure);
    for (const char* name : {"structure", "interface", "labels", "cuts", "mdr", "period",
                             "equivalence", "probes", "portfolio", "stage-timing"}) {
      add(name, AuditStatus::kSkipped, "run failed in containment; no result to verify");
    }
    return report;
  }

  // structure: the network validates (arity, PO fanins, registered loops)
  // and every LUT is K-feasible.
  try {
    mapped.validate();
    if (!mapped.is_k_bounded(options.k)) {
      add("structure", AuditStatus::kFail,
          "mapped network has a gate wider than K=" + std::to_string(options.k) +
              " (max fanin " + std::to_string(mapped.max_fanin()) + ")");
    } else {
      add("structure", AuditStatus::kPass,
          std::to_string(mapped.num_gates()) + " LUTs, K-bounded, validates");
    }
  } catch (const Error& e) {
    add("structure", AuditStatus::kFail, e.what());
  }

  // interface: same PI name set and PO display-name set as the input.
  {
    std::optional<std::string> failure;
    std::map<std::string, int> names;
    for (const NodeId pi : input.pis()) ++names[input.name(pi)];
    for (const NodeId pi : mapped.pis()) --names[mapped.name(pi)];
    for (const NodeId po : input.pos()) ++names["$po$" + po_display_name(input, po)];
    for (const NodeId po : mapped.pos()) --names["$po$" + po_display_name(mapped, po)];
    for (const auto& [name, count] : names) {
      if (count != 0) {
        failure = "PI/PO '" + name + "' " + (count > 0 ? "missing from" : "invented by") +
                  " the mapped network";
        break;
      }
    }
    add_outcome("interface", failure);
  }

  // labels / cuts: need collected artifacts.
  if (!result.artifacts.valid) {
    const char* why = options.collect_artifacts
                          ? "flow records no label artifacts (FlowSYN-s / identity fallback)"
                          : "artifacts not collected (set FlowOptions::collect_artifacts)";
    add("labels", AuditStatus::kSkipped, why);
    add("cuts", AuditStatus::kSkipped, why);
  } else {
    const FlowArtifacts& art = result.artifacts;
    add_outcome("labels", audit_labels(input, art.labels.labels, art.phi),
                "fixpoint at phi=" + std::to_string(art.phi));
    std::optional<std::string> failure;
    int checked = 0;
    for (const MappingRecord& rec : art.records) {
      failure = audit_mapping_record(input, art.labels.labels, art.phi, options.k, rec,
                                     audit.cone_node_budget);
      if (failure.has_value()) break;
      ++checked;
    }
    add_outcome("cuts", failure, std::to_string(checked) + " realization record(s)");
  }

  // mdr: independent recomputation via Howard's policy iteration.
  add_outcome("mdr", audit_mdr(mapped, result.phi, result.exact_mdr),
              result.exact_mdr.to_string() + " <= phi=" + std::to_string(result.phi));

  // period: the claimed (period, stages) pair must be achievable.
  if (result.period <= 0) {
    add("period", AuditStatus::kSkipped, "flow reported no clock period (pipelining disabled)");
  } else {
    add_outcome("period", audit_period(mapped, result.period, result.pipeline_stages),
                "period " + std::to_string(result.period) + " with " +
                    std::to_string(result.pipeline_stages) + " stage(s)");
  }

  // equivalence: zero-state, formal when register-free, bounded otherwise.
  if (!audit.check_equivalence) {
    add("equivalence", AuditStatus::kSkipped, "disabled by AuditOptions");
  } else {
    try {
      // The ROBDD engine caps at 63 variables; wider register-free circuits
      // fall through to the bounded check rather than failing on the cap.
      const bool bdd_fits = static_cast<int>(input.pis().size()) <= 63;
      if (input.num_ffs() == 0 && mapped.num_ffs() == 0 && bdd_fits) {
        if (const auto cex = combinational_counterexample(input, mapped)) {
          add("equivalence", AuditStatus::kFail,
              "PO '" + cex->po_name + "' differs (BDD miter counterexample)");
        } else {
          add("equivalence", AuditStatus::kPass, "formal (BDD miter)");
        }
      } else {
        SequentialCheckOptions sopt;
        sopt.cycles = audit.seq_cycles;
        sopt.runs = audit.seq_runs;
        sopt.seed = audit.seq_seed;
        sopt.warmup = audit.seq_warmup > 0
                          ? audit.seq_warmup
                          : derived_warmup(input, mapped, /*mapped_retimed=*/!options.pipeline,
                                           audit.seq_cycles);
        if (const auto cex = sequential_counterexample(input, mapped, sopt)) {
          add("equivalence", AuditStatus::kFail,
              "PO '" + cex->po_name + "' first differs at cycle " + std::to_string(cex->cycle));
        } else {
          add("equivalence", AuditStatus::kPass,
              "bounded co-simulation (" + std::to_string(sopt.runs) + "x" +
                  std::to_string(sopt.cycles) + " cycles, warmup " +
                  std::to_string(sopt.warmup) + ")");
        }
      }
    } catch (const Error& e) {
      add("equivalence", AuditStatus::kFail, e.what());
    }
  }

  // probes: the ledger is internally consistent and certifies the result —
  // no (engine, mode, phi) probed twice, no winning-engine probe more
  // degraded than the flow admits, the winning phi backed by a feasible
  // record whose label hash matches the artifacts, and (on an exact run) a
  // rejection witness at phi - 1 proving minimality. In a merged portfolio
  // ledger the severity/certification rules bind only the winning engine's
  // records (tagged with FlowResult::engine): a losing engine's degraded or
  // interrupted probes are expected casualties of the race and must never
  // outrank — or stand in for — the winner's certificate.
  if (result.probes.empty()) {
    add("probes", AuditStatus::kSkipped,
        "flow recorded no probe ledger (FlowSYN-s, or a pre-pipeline result)");
  } else {
    std::optional<std::string> failure;
    // Seed-only records are provenance (a warm-start import), not verdicts:
    // they certify nothing, reject nothing, and may coexist with a genuine
    // probe at the same (mode, phi) — every verdict check skips them.
    const auto find_probe = [&result](LabelMode mode, int phi) -> const ProbeRecord* {
      for (const ProbeRecord& rec : result.probes) {
        if (!rec.seed_only && rec.engine == result.engine && rec.mode == mode &&
            rec.phi == phi) {
          return &rec;
        }
      }
      return nullptr;
    };
    std::map<std::tuple<std::string, int, int>, int> seen;
    for (const ProbeRecord& rec : result.probes) {
      if (rec.seed_only) {
        if (!rec.imported || rec.feasible) {
          failure = "seed-only record at phi=" + std::to_string(rec.phi) +
                    " claims a verdict (must be imported and infeasible)";
          break;
        }
        continue;
      }
      if (++seen[{rec.engine, static_cast<int>(rec.mode), rec.phi}] > 1) {
        failure = "phi=" + std::to_string(rec.phi) + " (" + label_mode_name(rec.mode) +
                  (rec.engine.empty() ? std::string() : ", engine " + rec.engine) +
                  ") probed twice in one run";
        break;
      }
      if (rec.engine == result.engine &&
          combine_status(result.status, rec.status) != result.status) {
        failure = "probe phi=" + std::to_string(rec.phi) + " (" + label_mode_name(rec.mode) +
                  ") reported status " + status_name(rec.status) +
                  ", more severe than the flow's " + status_name(result.status);
        break;
      }
    }
    if (!failure.has_value() && result.artifacts.valid) {
      const FlowArtifacts& art = result.artifacts;
      const ProbeRecord* win = find_probe(art.mode, art.phi);
      if (win == nullptr) {
        failure = "no ledger record certifies the winning phi=" + std::to_string(art.phi) +
                  " (" + std::string(label_mode_name(art.mode)) + ")";
      } else if (!win->feasible) {
        failure = "winning phi=" + std::to_string(art.phi) + " is recorded infeasible";
      } else if (win->label_hash != hash_labels(art.labels.labels)) {
        failure = "winning label vector hash does not match its ledger record";
      } else if (result.status == Status::kOk && art.phi > 1) {
        // Both schedules probe phi - 1 before settling on phi (bisection's
        // last lo-advance, the descending scan's terminating probe), so an
        // uninterrupted, undegraded run must carry the rejection witness.
        const ProbeRecord* reject = find_probe(art.mode, art.phi - 1);
        const bool rejected =
            reject != nullptr && (art.po_limited
                                      ? (!reject->feasible || reject->max_po_label > art.phi - 1)
                                      : !reject->feasible);
        if (reject == nullptr) {
          failure = "exact run has no rejection witness at phi=" + std::to_string(art.phi - 1);
        } else if (!rejected) {
          failure = "phi=" + std::to_string(art.phi - 1) +
                    " was not rejected by its ledger record: minimality unproven";
        }
      }
    }
    add_outcome("probes", failure,
                std::to_string(result.probes.size()) + " probe record(s), ledger consistent");
  }

  // portfolio: winner selection re-verified from the race table. The
  // selected result must be the minimal certified φ among finishers under
  // the shared selection order (engines.hpp), every cancellation must be
  // justified by a finished certificate that provably dominates the victim,
  // and no engine — cancelled or not — may hold an exact feasible probe
  // below the selected φ (a cancelled engine therefore contributed no
  // certificate the selection ignored).
  if (result.portfolio.empty()) {
    add("portfolio", AuditStatus::kSkipped, "standalone flow run (no portfolio)");
  } else {
    std::optional<std::string> failure;
    const std::vector<EngineRun>& table = result.portfolio;
    std::vector<const EngineSpec*> specs(table.size(), nullptr);
    std::size_t winner_pos = table.size();
    for (std::size_t i = 0; i < table.size() && !failure.has_value(); ++i) {
      specs[i] = find_engine(table[i].name);
      if (specs[i] == nullptr) {
        failure = "unknown engine '" + table[i].name + "' in the portfolio table";
        break;
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (table[j].name == table[i].name) {
          failure = "engine '" + table[i].name + "' listed twice in the portfolio table";
          break;
        }
      }
      if (table[i].name == result.engine) winner_pos = i;
    }
    if (!failure.has_value() && result.engine.empty()) {
      failure = "portfolio result names no winning engine";
    }
    if (!failure.has_value() && winner_pos == table.size()) {
      failure = "winning engine '" + result.engine + "' is missing from the portfolio table";
    }
    // Row coherence: certified iff the engine finished exactly; cancelled
    // rows were interrupted, never exact.
    for (std::size_t i = 0; i < table.size() && !failure.has_value(); ++i) {
      const EngineRun& row = table[i];
      if (row.certified != (row.status == Status::kOk)) {
        failure = "engine '" + row.name + "' marked " +
                  (row.certified ? "certified with status " : "uncertified despite status ") +
                  status_name(row.status);
      } else if (row.cancelled && !is_interrupt(row.status)) {
        failure = "cancelled engine '" + row.name + "' reports status " +
                  std::string(status_name(row.status)) + " (expected an interrupt)";
      }
    }
    if (!failure.has_value()) {
      const EngineRun& win = table[winner_pos];
      if (win.cancelled) {
        failure = "winning engine '" + result.engine + "' is marked cancelled";
      } else if (win.phi != result.phi) {
        failure = "winner row claims phi=" + std::to_string(win.phi) +
                  " but the result carries phi=" + std::to_string(result.phi);
      } else if (win.status != result.status) {
        failure = std::string("winner row status ") + status_name(win.status) +
                  " does not match the result's " + status_name(result.status);
      }
    }
    // Selection minimality among certified finishers.
    if (!failure.has_value()) {
      std::size_t best = table.size();
      for (std::size_t i = 0; i < table.size(); ++i) {
        if (!table[i].certified || table[i].cancelled) continue;
        if (best == table.size() ||
            portfolio_prefers(table[i].phi, specs[i]->strength, i, table[best].phi,
                              specs[best]->strength, best)) {
          best = i;
        }
      }
      if (best != table.size() && best != winner_pos) {
        failure = "selected winner '" + result.engine + "' (phi=" +
                  std::to_string(table[winner_pos].phi) + ") is not the preferred certified " +
                  "engine: '" + table[best].name + "' certified phi=" +
                  std::to_string(table[best].phi);
      }
    }
    // Every cancellation justified by a dominating finished certificate.
    for (std::size_t i = 0; i < table.size() && !failure.has_value(); ++i) {
      if (!table[i].cancelled) continue;
      bool justified = false;
      for (std::size_t j = 0; j < table.size() && !justified; ++j) {
        justified = table[j].certified && !table[j].cancelled &&
                    never_beats(*specs[i], *specs[j]) &&
                    (specs[i]->strength < specs[j]->strength || j < i);
      }
      if (!justified) {
        failure = "engine '" + table[i].name +
                  "' was cancelled but no finished certificate dominates it";
      }
    }
    // No exact feasible probe below the selected φ, anywhere in the merged
    // ledger, and every record tagged with a raced engine.
    if (!failure.has_value() && winner_pos != table.size()) {
      const bool po_limited = specs[winner_pos]->period_objective;
      for (const ProbeRecord& rec : result.probes) {
        if (rec.seed_only) continue;
        bool known = false;
        for (const EngineRun& row : table) known = known || row.name == rec.engine;
        if (!known) {
          failure = "probe record tagged with engine '" + rec.engine +
                    "', which is not in the portfolio";
          break;
        }
        const bool certifies = rec.outcome == ProbeOutcome::kOk && rec.feasible &&
                               (!po_limited || rec.max_po_label <= rec.phi);
        if (certifies && rec.phi < result.phi) {
          failure = "engine '" + rec.engine + "' holds an exact feasible probe at phi=" +
                    std::to_string(rec.phi) + ", below the selected phi=" +
                    std::to_string(result.phi) + ": wrong winner";
          break;
        }
      }
    }
    add_outcome("portfolio", failure,
                std::to_string(table.size()) + " engine(s), winner '" + result.engine +
                    "' re-verified");
  }

  // stage-timing: the per-stage wall times are non-negative and account for
  // (at most) the flow's total wall time, with 5% tolerance for clock skew.
  if (result.stage_metrics.stages.empty()) {
    add("stage-timing", AuditStatus::kSkipped, "flow recorded no stage metrics");
  } else if (result.seconds <= 0.0) {
    add("stage-timing", AuditStatus::kSkipped,
        "in-pipeline audit (flow wall time not recorded yet)");
  } else {
    std::optional<std::string> failure;
    double sum = 0.0;
    for (const StageMetric& s : result.stage_metrics.stages) {
      if (s.seconds < 0.0) {
        failure = "stage '" + s.name + "' reports a negative wall time";
        break;
      }
      sum += s.seconds;
    }
    if (!failure.has_value() && sum > result.seconds * 1.05 + 1e-3) {
      failure = "stage wall times sum to " + std::to_string(sum) + "s, exceeding the flow's " +
                std::to_string(result.seconds) + "s";
    }
    add_outcome("stage-timing", failure,
                std::to_string(result.stage_metrics.stages.size()) +
                    " stage(s) within the flow wall time");
  }
  return report;
}

bool audit_flag_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--audit") return true;
  }
  return false;
}

const char* audit_cli_help() {
  return "--audit (re-verify every invariant of each flow result and print a breakdown)";
}

bool audit_and_report(const Circuit& input, const FlowResult& result,
                      const FlowOptions& options, const std::string& tag, std::ostream& os,
                      const AuditOptions& audit) {
  const AuditReport report = audit_flow(input, result, options, audit);
  int passes = 0;
  int skips = 0;
  for (const AuditCheck& c : report.checks) {
    if (c.status == AuditStatus::kPass) ++passes;
    if (c.status == AuditStatus::kSkipped) ++skips;
  }
  os << "audit " << tag << ": " << (report.passed() ? "PASS" : "FAIL") << " (" << passes
     << " passed, " << report.failures() << " failed, " << skips << " skipped)\n"
     << report.breakdown();
  return report.passed();
}

}  // namespace turbosyn
