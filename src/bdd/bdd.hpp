#pragma once
// Reduced Ordered Binary Decision Diagrams.
//
// The paper performs sequential functional decomposition with OBDDs: the cut
// function is built with the bound set ordered first, and the column
// multiplicity of the decomposition is the number of distinct cofactors at
// the bound/free boundary — which on an ROBDD is simply the number of
// distinct nodes referenced across that level boundary.
//
// The manager uses a fixed variable order (BDD variable i is level i); the
// decomposition layer reorders by remapping truth-table variables before
// construction. Managers are short-lived (one per resynthesis attempt), so
// there is no garbage collection; a node budget guards against blowup.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/truth_table.hpp"

namespace turbosyn {

using BddRef = std::uint32_t;

class BddManager {
 public:
  /// Reaction to node-budget exhaustion. kThrow raises turbosyn::Error (the
  /// right default for verification, where a silently wrong BDD would be
  /// fatal). kSaturate latches exhausted() and returns the zero terminal for
  /// every further new node — results are garbage from then on, but callers
  /// that test exhausted() right after construction can degrade gracefully
  /// (the decomposition path treats it as "this attempt failed").
  enum class OnBudget : std::uint8_t { kThrow, kSaturate };

  /// num_vars: number of levels; node budget bounds total unique nodes.
  explicit BddManager(int num_vars, std::size_t node_budget = 1u << 22,
                      OnBudget on_budget = OnBudget::kThrow);

  int num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// True iff the node budget fired in kSaturate mode; results built after
  /// that point are unusable.
  bool exhausted() const { return exhausted_; }

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }
  bool is_const(BddRef f) const { return f <= 1; }

  BddRef var(int index);
  BddRef nvar(int index);

  /// Level (variable index) of the node; num_vars() for terminals.
  int var_of(BddRef f) const { return nodes_[f].var; }
  BddRef low(BddRef f) const { return nodes_[f].low; }
  BddRef high(BddRef f) const { return nodes_[f].high; }

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_not(BddRef f) { return ite(f, zero(), one()); }
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, zero()); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, one(), g); }
  BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }

  /// f with variable `index` fixed to `value`.
  BddRef restrict_var(BddRef f, int index, bool value);

  /// Number of DAG nodes reachable from f (terminals excluded).
  std::size_t dag_size(BddRef f) const;

  /// Number of satisfying assignments of f over all num_vars() variables.
  std::uint64_t sat_count(BddRef f) const;

  /// Variables f depends on, ascending.
  std::vector<int> support(BddRef f) const;

  /// Distinct cofactors of f with respect to all assignments of variables
  /// 0..boundary-1, i.e. the ROBDD nodes referenced from above across the
  /// level boundary. Order is deterministic (DFS discovery). The size of the
  /// result is the column multiplicity of the (bound | free) decomposition.
  std::vector<BddRef> boundary_cofactors(BddRef f, int boundary) const;

  /// The cofactor of f under the complete bound-set assignment (bits of
  /// `assignment` give variables 0..boundary-1).
  BddRef cofactor_at(BddRef f, int boundary, std::uint32_t assignment) const;

  BddRef from_truth_table(const TruthTable& t);
  /// Truth table of f over variables 0..arity-1; arity must cover support(f).
  TruthTable to_truth_table(BddRef f, int arity) const;

 private:
  struct Node {
    int var;
    BddRef low;
    BddRef high;
  };

  BddRef make_node(int var, BddRef low, BddRef high);
  BddRef from_tt_rec(const TruthTable& t, int msb_var, std::uint32_t offset, std::uint32_t len);

  int num_vars_;
  std::size_t node_budget_;
  OnBudget on_budget_ = OnBudget::kThrow;
  bool exhausted_ = false;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, BddRef> unique_;       // (var, low, high) -> node
  std::unordered_map<std::uint64_t, BddRef> ite_cache_;    // (f, g, h) -> result
};

}  // namespace turbosyn
