#include "bdd/bdd.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/check.hpp"

namespace turbosyn {
namespace {

// Refs are packed three-per-64-bit-key in the caches, so they must stay
// below 2^21; that is far beyond any ROBDD this library builds (<= 16 vars).
constexpr std::size_t kMaxNodes = (std::size_t{1} << 21) - 1;

std::uint64_t pack3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return a | (b << 21) | (c << 42);
}

}  // namespace

BddManager::BddManager(int num_vars, std::size_t node_budget, OnBudget on_budget)
    : num_vars_(num_vars),
      node_budget_(std::min(node_budget, kMaxNodes)),
      on_budget_(on_budget) {
  TS_CHECK(num_vars >= 0 && num_vars <= 63, "BDD variable count out of range");
  nodes_.push_back(Node{num_vars_, 0, 0});  // terminal 0
  nodes_.push_back(Node{num_vars_, 1, 1});  // terminal 1
}

BddRef BddManager::make_node(int var, BddRef low, BddRef high) {
  if (low == high) return low;
  const std::uint64_t key = pack3(low, high, static_cast<std::uint64_t>(var));
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (on_budget_ == OnBudget::kSaturate && nodes_.size() >= node_budget_) {
    exhausted_ = true;
    return zero();
  }
  TS_CHECK(nodes_.size() < node_budget_, "BDD node budget exhausted");
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(int index) {
  TS_CHECK(index >= 0 && index < num_vars_, "BDD variable index out of range");
  return make_node(index, zero(), one());
}

BddRef BddManager::nvar(int index) {
  TS_CHECK(index >= 0 && index < num_vars_, "BDD variable index out of range");
  return make_node(index, one(), zero());
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const std::uint64_t key = pack3(f, g, h);
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int m = std::min({var_of(f), var_of(g), var_of(h)});
  const auto cf = [&](BddRef x, bool hi) { return var_of(x) == m ? (hi ? high(x) : low(x)) : x; };
  const BddRef lo = ite(cf(f, false), cf(g, false), cf(h, false));
  const BddRef hi = ite(cf(f, true), cf(g, true), cf(h, true));
  const BddRef result = make_node(m, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::restrict_var(BddRef f, int index, bool value) {
  TS_CHECK(index >= 0 && index < num_vars_, "BDD variable index out of range");
  if (var_of(f) > index) return f;
  if (var_of(f) == index) return value ? high(f) : low(f);
  // Rebuild above the restricted level. Small recursion: memoization via ite
  // machinery is unnecessary because this is only used on shallow prefixes.
  const BddRef lo = restrict_var(low(f), index, value);
  const BddRef hi = restrict_var(high(f), index, value);
  return make_node(var_of(f), lo, hi);
}

std::size_t BddManager::dag_size(BddRef f) const {
  std::unordered_set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef x = stack.back();
    stack.pop_back();
    if (is_const(x) || !seen.insert(x).second) continue;
    stack.push_back(low(x));
    stack.push_back(high(x));
  }
  return seen.size();
}

std::uint64_t BddManager::sat_count(BddRef f) const {
  std::unordered_map<BddRef, std::uint64_t> memo;
  // count(x) = satisfying assignments over variables [var_of(x), num_vars).
  auto count = [&](auto&& self, BddRef x) -> std::uint64_t {
    if (x == zero()) return 0;
    if (x == one()) return 1;
    const auto it = memo.find(x);
    if (it != memo.end()) return it->second;
    const std::uint64_t lo =
        self(self, low(x)) << (var_of(low(x)) - var_of(x) - 1);
    const std::uint64_t hi =
        self(self, high(x)) << (var_of(high(x)) - var_of(x) - 1);
    const std::uint64_t result = lo + hi;
    memo.emplace(x, result);
    return result;
  };
  return count(count, f) << var_of(f);
}

std::vector<int> BddManager::support(BddRef f) const {
  std::vector<bool> present(static_cast<std::size_t>(num_vars_), false);
  std::unordered_set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef x = stack.back();
    stack.pop_back();
    if (is_const(x) || !seen.insert(x).second) continue;
    present[static_cast<std::size_t>(var_of(x))] = true;
    stack.push_back(low(x));
    stack.push_back(high(x));
  }
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (present[static_cast<std::size_t>(v)]) vars.push_back(v);
  }
  return vars;
}

std::vector<BddRef> BddManager::boundary_cofactors(BddRef f, int boundary) const {
  TS_CHECK(boundary >= 0 && boundary <= num_vars_, "boundary out of range");
  std::vector<BddRef> result;
  std::unordered_set<BddRef> emitted;
  std::unordered_set<BddRef> visited;
  // DFS through the bound-set region (vars < boundary); anything referenced
  // at or below the boundary is a distinct cofactor.
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef x = stack.back();
    stack.pop_back();
    if (is_const(x) || var_of(x) >= boundary) {
      if (emitted.insert(x).second) result.push_back(x);
      continue;
    }
    if (!visited.insert(x).second) continue;
    stack.push_back(high(x));
    stack.push_back(low(x));
  }
  return result;
}

BddRef BddManager::cofactor_at(BddRef f, int boundary, std::uint32_t assignment) const {
  while (!is_const(f) && var_of(f) < boundary) {
    f = (assignment >> var_of(f)) & 1 ? high(f) : low(f);
  }
  return f;
}

BddRef BddManager::from_tt_rec(const TruthTable& t, int msb_var, std::uint32_t offset,
                               std::uint32_t len) {
  // The table has been variable-reversed, so splitting the slice in half
  // splits on reversed-variable msb_var, which corresponds to the original
  // (= manager) variable t.num_vars()-1-msb_var; recursion therefore emits
  // nodes top-down in manager order. Leaves read single bits.
  if (len == 1) return t.bit(offset) ? one() : zero();
  const BddRef lo = from_tt_rec(t, msb_var - 1, offset, len / 2);
  const BddRef hi = from_tt_rec(t, msb_var - 1, offset + len / 2, len / 2);
  return make_node(t.num_vars() - 1 - msb_var, lo, hi);
}

BddRef BddManager::from_truth_table(const TruthTable& t) {
  TS_CHECK(t.num_vars() <= num_vars_, "truth table has more variables than the manager");
  const int m = t.num_vars();
  if (m == 0) return t.bit(0) ? one() : zero();
  std::vector<int> reverse(static_cast<std::size_t>(m));
  for (int v = 0; v < m; ++v) reverse[static_cast<std::size_t>(v)] = m - 1 - v;
  const TruthTable reversed = t.remap(m, reverse);
  return from_tt_rec(reversed, m - 1, 0, static_cast<std::uint32_t>(reversed.num_bits()));
}

TruthTable BddManager::to_truth_table(BddRef f, int arity) const {
  TS_CHECK(arity >= 0 && arity <= TruthTable::kMaxVars, "arity out of range");
  std::unordered_map<BddRef, TruthTable> memo;
  auto build = [&](auto&& self, BddRef x) -> const TruthTable& {
    const auto it = memo.find(x);
    if (it != memo.end()) return it->second;
    TruthTable result = TruthTable::constant(arity, false);
    if (x == one()) {
      result = TruthTable::constant(arity, true);
    } else if (x != zero()) {
      TS_CHECK(var_of(x) < arity, "BDD depends on a variable beyond the requested arity");
      const TruthTable v = TruthTable::var(arity, var_of(x));
      result = (~v & self(self, low(x))) | (v & self(self, high(x)));
    }
    return memo.emplace(x, std::move(result)).first->second;
  };
  return build(build, f);
}

}  // namespace turbosyn
