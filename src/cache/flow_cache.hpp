#pragma once
// Persistent, content-addressed store of flow artifacts.
//
// A FlowCache maps a canonical key — the circuit's canonical structural form
// (netlist/canonical.hpp) plus a fingerprint of every result-relevant flow
// option — to the artifacts a finished run produced: the probe ledger, the
// winning per-φ label vector, and the final FlowResult metrics and mapped
// network. On a later run of the same (circuit, options, flow) the search
// stage is replaced wholesale: cached probe outcomes re-enter the ledger as
// imported records and the driver proceeds straight to mapping generation
// (src/cache/cached_flow.hpp), which is deterministic from the labels, so
// the cached run is bit-identical to the uncached one.
//
// Soundness rules (DESIGN.md §11):
//   - Only exact runs are stored. store() refuses any result whose status is
//     not kOk or that was interrupted — a degraded "infeasible" is not a
//     certificate, so it must never seed a later run's minimality claim
//     (the quarantine the PR 2 / PR 4 ledger rules require).
//   - Hash equality is never trusted: every entry carries the full key text
//     and lookup() compares it byte for byte. A 64-bit collision (or a stale
//     file reused under a recycled name) degrades to a miss, never to a
//     wrong artifact.
//   - Any malformed entry — schema-version mismatch, truncation, corrupted
//     fields, label vector of the wrong length — is a clean miss: lookup()
//     never throws and never returns a partially parsed entry.
//   - Writes are atomic (unique tmp file + rename), so concurrent writers
//     (batch tasks mapping the same circuit) and readers racing a writer see
//     either no entry or a complete one, never a torn file.
//
// Crash consistency (DESIGN.md §13): rename is atomic but write is not — a
// power cut or SIGKILL mid-write leaves a stray tmp file, and a crash after
// a partial flush that still renamed (or plain disk corruption) leaves a
// torn entry. Every v3 entry therefore ends in a length + checksum trailer
// ("sum <n> <hex64>", FNV-1a over the first n bytes); lookup() verifies it,
// so a torn entry — even one that still tokenizes — demotes to a clean miss
// and is counted in recovered_entries(). recover() garbage-collects stray
// tmp files, unparseable entries and dangling near-miss sidecars; store()
// retries transient write/rename failures with a short deterministic
// backoff (reads never retry: a miss is already sound and cheap).
//
// Fault injection: the read/write/rename/sidecar paths are failpoint sites
// ("cache.entry.read", "cache.entry.write", "cache.entry.rename",
// "cache.sidecar.read", "cache.sidecar.write" — see base/failpoint.hpp).
// With no failpoint armed every site is a single relaxed atomic load.
//
// The on-disk format is a versioned, line-oriented text schema (one file per
// key, named <16-hex-hash>.tsce) chosen for debuggability; entries are a few
// KB for typical circuits.
//
// Hot tier (enable_hot_tier): an optional in-memory layer over the
// persistent store, for long-lived processes (the mapping daemon) where the
// same circuits recur and re-reading + re-parsing the entry file per request
// is the dominant hit cost. The tier holds validated CacheEntry copies
// keyed by hash with the full key text retained, so the collision rule
// above applies to memory exactly as to disk. It is write-through: store()
// and disk hits populate it, eviction (byte- and entry-capped) never loses
// anything the disk doesn't still have.
//
// Eviction policy (set_hot_policy, DESIGN.md §16): `kRecency` evicts the
// least recently used entry (classic LRU). `kCostAware` evicts the entry
// with the lowest score = flow_wall_seconds × 2^-(age / half-life), where
// flow_wall_seconds is the wall time the originating run spent in its label
// probes (summed from the probe ledger, persisted with the entry) and age
// counts hot-tier accesses since the entry was last touched — so cheap
// entries leave first and an expensive entry must idle for several
// half-lives before a cheap-but-fresh one outranks it. The policy decides
// only WHAT stays resident: a hit replays the identical validated entry
// either way (and an eviction only demotes to the disk path), so results
// are bit-identical across policies — only hit rates differ.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engines.hpp"
#include "core/flows.hpp"
#include "core/probe_ledger.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// Hot-tier eviction policy (see the header comment and DESIGN.md §16).
enum class HotPolicy {
  kRecency,    // evict the least recently used entry (LRU)
  kCostAware,  // evict the lowest flow_wall_seconds × recency-decay score
};

/// Stable names for flags, STATS, and logs: "recency" / "cost-aware".
const char* hot_policy_name(HotPolicy policy);
/// Parses a policy name; nullopt for anything else.
std::optional<HotPolicy> parse_hot_policy(std::string_view name);

/// Cache key: hash for addressing, full text for the collision check.
struct CacheKey {
  std::uint64_t hash = 0;
  std::string text;
  /// Structural sketch for the near-miss secondary index: a hash of the
  /// options line plus the sorted PI and PO name sets. Circuits that differ
  /// by a small internal edit keep the same sketch, so a miss can still
  /// retrieve the old entry as a warm-start donor (never as a result).
  std::uint64_t near_sketch = 0;
};

/// Canonical key for running `kind` on `c` under `options`. Covers exactly
/// the options that can change the result (k, cmax, height_span, the
/// algorithm toggles, expansion limits); excludes num_threads (results are
/// bit-identical across thread counts by construction), budgets (a budget
/// that interfered makes the run unstorable; one that did not leaves the
/// result equal to the unlimited run) and observability knobs.
CacheKey make_cache_key(const Circuit& c, const FlowOptions& options, FlowKind kind);

/// Key for racing `engines` (a validated portfolio, core/portfolio.hpp) on
/// `c`. The options line replaces the flow name with the ordered engine
/// list, each entry carrying its spec fingerprint — so a portfolio hit is
/// only served to the exact same race (same engines, same order, same spec
/// deltas), and reordering or swapping an engine is a clean miss.
CacheKey make_portfolio_cache_key(const Circuit& c, const FlowOptions& options,
                                  const std::vector<const EngineSpec*>& engines);

/// One serialized probe-ledger record (stats and wall time are dropped: an
/// imported record never carries them — the originating run does).
struct CachedProbe {
  /// Ledger tag of the engine that produced the record (schema v4). Empty
  /// for standalone runs; serialized as the "-" placeholder, so an engine
  /// can never be named "-".
  std::string engine;
  int phi = 0;
  LabelMode mode = LabelMode::kPlain;
  ProbeOutcome outcome = ProbeOutcome::kOk;
  Status status = Status::kOk;
  bool feasible = false;
  std::uint64_t label_hash = 0;
  int max_po_label = 0;
};

/// Everything a hit needs to replay the flow without label probes.
struct CacheEntry {
  /// Winning engine of a portfolio run (schema v4; empty for standalone
  /// flows). A portfolio hit resolves this name against the requested
  /// engine list and replays under the winner's option deltas.
  std::string winner;
  int phi = 0;                     // the ratio/period the run settled on
  LabelMode mode = LabelMode::kPlain;  // update rule of the winning labels
  int max_po_label = 0;            // of the winning label vector
  std::vector<CachedProbe> probes; // the full ledger, in record order
  /// Converged labels at `phi`, in CANONICAL node order (schema v2): entry i
  /// belongs to the node at canonical_node_order(c)[i]. Canonical order is
  /// parse-order independent, so a differently-ordered parse of the same
  /// netlist replays correctly, and near-miss transfers can match labels to
  /// a different circuit's nodes by name. Callers remap to input ids.
  std::vector<int> winning_labels;
  // Final-result record (diagnostics and replay cross-checks; the mapped
  // network is regenerated from the labels on a hit, not parsed from here).
  int luts = 0;
  std::int64_t ffs = 0;
  std::int64_t mdr_num = 0;
  std::int64_t mdr_den = 1;
  std::int64_t period = 0;
  int pipeline_stages = 0;
  /// Wall time the originating run spent in its label probes (summed from
  /// the probe ledger, schema v5) — the compute this entry saves on a hit,
  /// and the cost the kCostAware hot tier scores by. Diagnostics only:
  /// never affects the replayed result.
  double flow_wall_seconds = 0.0;
  std::string mapped_blif;
};

class FlowCache {
 public:
  /// Entry files live directly under `dir`; the directory (and its parents)
  /// are created on the first store.
  explicit FlowCache(std::string dir);

  /// v5: entries record the originating run's probe wall time ("cost"
  /// line), the input the cost-aware hot tier scores by (v4 named the
  /// winning engine and tagged every probe record with its engine; v3 added
  /// the length + checksum trailer; v2 canonical-order labels and the
  /// near-miss index). Older entries parse as a schema mismatch, i.e. a
  /// clean miss.
  static constexpr int kSchemaVersion = 5;

  /// The complete, validated entry for `key`, or nullopt (miss). Collision-
  /// checked against key.text; never throws on malformed files. With the hot
  /// tier enabled, a resident entry is served from memory (no file read, no
  /// re-parse) — still byte-compared against key.text, because hash equality
  /// is never trusted, in RAM or on disk.
  std::optional<CacheEntry> lookup(const CacheKey& key) const;

  /// In-memory hot tier: keeps recently looked-up / stored entries resident
  /// so a repeated circuit skips the file read, parse, and checksum entirely
  /// (the mapping daemon's steady-state path). LRU eviction from the cold
  /// end whenever the tier exceeds `max_bytes` (estimated resident size) or
  /// `max_entries` (0 = no entry-count cap). `max_bytes` == 0 disables the
  /// tier and drops everything resident. The tier is a pure cache over the
  /// persistent store — eviction never loses data, and every hot entry was
  /// validated through the full parse/checksum path when it entered.
  /// Thread-safe; an entry larger than `max_bytes` on its own is simply
  /// never admitted.
  void enable_hot_tier(std::size_t max_bytes, std::size_t max_entries = 0);
  bool hot_tier_enabled() const;

  /// Switches the hot tier's eviction policy (default kRecency). Safe to
  /// call at any time, including mid-run with entries resident: the policy
  /// only picks eviction victims, so reconfiguration never invalidates a
  /// resident entry or changes any result.
  void set_hot_policy(HotPolicy policy);
  HotPolicy hot_policy() const;

  /// A validated donor entry found through the near-miss index: the stored
  /// run's artifacts plus the canonical text of the circuit it ran on.
  /// Usable ONLY to derive a warm seed — its labels certify nothing for the
  /// requesting circuit.
  struct NearMiss {
    CacheEntry entry;
    std::string canonical_text;  // the donor circuit's canonical form
  };

  /// Donor entry for `key`'s structural sketch, or nullopt. Only consulted
  /// after lookup() missed; requires the donor to share the exact options
  /// line (flow kind and all result-relevant options) and to pass the same
  /// schema/certification validation as an exact hit.
  std::optional<NearMiss> lookup_near(const CacheKey& key) const;

  /// Atomically persists `entry` under `key` and updates the near-miss
  /// index. Returns false without writing when the entry is unstorable (see
  /// rejects_ below) or the write failed.
  bool store(const CacheKey& key, const CacheEntry& entry);

  /// storable() + entry_from_result() + store() in one step; a quarantined
  /// (unstorable) result counts against rejects(). Returns true iff written.
  bool store_result(const CacheKey& key, const FlowResult& result, const Circuit& input);

  /// True iff `result` may be cached: an exact, uninterrupted run whose
  /// winning labels were collected. Everything else is quarantined.
  static bool storable(const FlowResult& result);

  /// Builds the entry for a storable result (artifacts must be valid).
  /// `input` is the circuit the flow ran on: labels are remapped from input
  /// ids to canonical order for storage.
  static CacheEntry entry_from_result(const FlowResult& result, const Circuit& input);

  /// What one recover() pass cleaned out of the cache directory.
  struct RecoveryStats {
    std::int64_t stray_tmp = 0;          // *.tmp.* files from crashed writers
    std::int64_t torn_entries = 0;       // .tsce files failing parse/checksum
    std::int64_t dangling_sidecars = 0;  // .tsni files malformed or pointing
                                         // at a missing donor entry
    std::int64_t total() const { return stray_tmp + torn_entries + dangling_sidecars; }
  };

  /// Crash recovery: scans the cache directory and deletes stray tmp files,
  /// entries that fail parse or checksum validation, and near-miss sidecars
  /// that are malformed or point at a donor entry that no longer exists.
  /// Never throws; a missing directory is an empty pass. Call at startup —
  /// running it concurrently with an active writer can GC that writer's
  /// live tmp file, which the writer then absorbs as a retried store.
  /// Everything removed also counts into the recovered_* counters.
  RecoveryStats recover();

  const std::string& dir() const { return dir_; }
  std::string entry_path(const CacheKey& key) const;

  // Monotonic per-process counters (thread-safe; for logs and tests).
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::int64_t stores() const { return stores_.load(std::memory_order_relaxed); }
  std::int64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }
  std::int64_t near_hits() const { return near_hits_.load(std::memory_order_relaxed); }
  /// Torn/corrupt entries demoted to misses (lookup paths) or GC'd
  /// (recover()) — every one was detected, none was ever served.
  std::int64_t recovered_entries() const {
    return recovered_entries_.load(std::memory_order_relaxed);
  }
  /// Stray tmp files garbage-collected by recover().
  std::int64_t recovered_tmp() const {
    return recovered_tmp_.load(std::memory_order_relaxed);
  }
  /// Near-miss sidecars dropped: truncated/garbage on read, dangling on
  /// recover(). A dropped sidecar only costs a warm start.
  std::int64_t recovered_sidecars() const {
    return recovered_sidecars_.load(std::memory_order_relaxed);
  }
  /// Store attempts re-run after a transient write/rename failure.
  std::int64_t retries() const { return retries_.load(std::memory_order_relaxed); }

  // Hot-tier counters. hot_hits is a subset of hits(): every hot hit is a
  // hit, served without touching the filesystem.
  std::int64_t hot_hits() const { return hot_hits_.load(std::memory_order_relaxed); }
  std::int64_t hot_evictions() const {
    return hot_evictions_.load(std::memory_order_relaxed);
  }
  /// Evictions where the kCostAware score picked a DIFFERENT victim than
  /// plain LRU would have (a subset of hot_evictions()); zero under
  /// kRecency.
  std::int64_t hot_cost_evictions() const {
    return hot_cost_evictions_.load(std::memory_order_relaxed);
  }
  /// Cumulative flow_wall_seconds of the LRU-tail entries the kCostAware
  /// policy spared on those evictions — the recompute time the policy kept
  /// resident that recency-only eviction would have dropped.
  double hot_cost_retained_seconds() const;
  /// Currently resident entries / estimated resident bytes (point-in-time,
  /// not monotonic).
  std::int64_t hot_entries() const;
  std::int64_t hot_bytes() const;

 private:
  std::string near_index_path(std::uint64_t sketch) const;

  /// One resident entry: the full key text rides along for the collision
  /// check, `bytes` is the admission-time size estimate eviction accounts,
  /// `cost` and `last_use` feed the kCostAware score (last_use is a logical
  /// access tick, not wall clock, so eviction order is deterministic for a
  /// given access sequence).
  struct HotEntry {
    std::uint64_t hash = 0;
    std::string key_text;
    CacheEntry entry;
    std::size_t bytes = 0;
    double cost = 0.0;          // the entry's flow_wall_seconds
    std::uint64_t last_use = 0; // hot_tick_ at the last lookup/insert
  };

  /// Resident copy for `key` (byte-compared), bumping it to the MRU end.
  std::optional<CacheEntry> hot_lookup(const CacheKey& key) const;
  /// Admits a validated entry, evicting victims past the caps. No-op when
  /// the tier is disabled or the entry alone exceeds max_bytes.
  void hot_insert(const CacheKey& key, const CacheEntry& entry) const;
  /// Evicts per the active policy until the caps hold. Caller holds hot_mu_.
  void hot_evict_locked() const;

  std::string dir_;

  // Hot tier (all guarded by hot_mu_ except the atomic counters; mutable:
  // lookup() is const but bumps recency and admits disk hits).
  mutable std::mutex hot_mu_;
  mutable std::list<HotEntry> hot_lru_;  // front = most recently used
  mutable std::unordered_map<std::uint64_t, std::list<HotEntry>::iterator> hot_index_;
  std::size_t hot_max_bytes_ = 0;    // 0 = tier disabled
  std::size_t hot_max_entries_ = 0;  // 0 = no entry-count cap
  HotPolicy hot_policy_ = HotPolicy::kRecency;
  mutable std::size_t hot_bytes_now_ = 0;
  mutable std::uint64_t hot_tick_ = 0;  // logical access clock for the decay
  mutable double hot_cost_retained_seconds_ = 0.0;
  mutable std::atomic<std::int64_t> hot_hits_{0};
  mutable std::atomic<std::int64_t> hot_evictions_{0};
  mutable std::atomic<std::int64_t> hot_cost_evictions_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> stores_{0};
  std::atomic<std::int64_t> rejects_{0};
  mutable std::atomic<std::int64_t> near_hits_{0};
  mutable std::atomic<std::int64_t> recovered_entries_{0};
  std::atomic<std::int64_t> recovered_tmp_{0};
  mutable std::atomic<std::int64_t> recovered_sidecars_{0};
  std::atomic<std::int64_t> retries_{0};
};

}  // namespace turbosyn
