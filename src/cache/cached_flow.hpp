#pragma once
// Cache-aware flow execution: replay a stored run without label probes.
//
// run_flow_cached() is a drop-in for run_flow() that consults a FlowCache.
// On a miss it runs the flow normally and populates the store (exact runs
// only — see FlowCache::storable). On a hit it replays the run through the
// same staged FlowDriver, with the search stage replaced by a
// CachedSearchStage: every cached probe outcome re-enters the ProbeLedger as
// an imported record (keeping its original verdict and provenance rules —
// the ledger shows only imported entries, and a φ-1 rejection witness stays
// available to the auditor), the winning labels are published directly, and
// the driver proceeds straight to mapgen → pack → pipeline/retime. Those
// stages are deterministic functions of (circuit, labels, φ, options), so a
// hit is bit-identical to the uncached run — the flow-fuzz --through-cache
// replay asserts exactly that.
//
// FlowSYN-s runs no label search; it passes through uncached.

#include "cache/flow_cache.hpp"
#include "core/driver.hpp"
#include "core/portfolio.hpp"

namespace turbosyn {

/// What run_flow_cached did, for logs and result records.
struct CacheRunInfo {
  bool hit = false;       // the run was replayed from the store
  bool stored = false;    // the run populated the store
  bool near_miss = false; // a miss that ran warm-seeded from a donor entry
};

/// Runs `kind` on `c`, consulting `cache` (nullptr = plain run_flow).
FlowResult run_flow_cached(FlowKind kind, const Circuit& c, const FlowOptions& options,
                           FlowCache* cache, CacheRunInfo* info = nullptr);

/// Cache-aware portfolio racing: run_portfolio() with a FlowCache in front.
/// The key covers the ordered engine list with per-spec fingerprints
/// (make_portfolio_cache_key). A hit resolves the stored winner against the
/// requested engines, applies that spec's option deltas, and replays the
/// winner's artifacts through the staged driver — bit-identical to re-racing,
/// because the race itself is bit-identical to running every engine and
/// selecting with the shared comparator. The replayed result carries
/// FlowResult::engine and the merged engine-tagged ledger but an empty
/// portfolio table (no race happened, so there is nothing for the
/// "portfolio" audit to re-verify). A race won by an engine without label
/// artifacts (FlowSYN-s) is quarantined, never stored.
FlowResult run_portfolio_cached(const std::vector<const EngineSpec*>& engines,
                                const Circuit& c, const FlowOptions& options,
                                const PortfolioOptions& popt, FlowCache* cache,
                                CacheRunInfo* info = nullptr);

/// The search-stage replacement a cache hit substitutes for UbProbe +
/// PhiSearch: publishes the cached winning labels and re-records every
/// cached probe as imported. Exposed for tests and the batch runner.
class CachedSearchStage final : public Stage {
 public:
  explicit CachedSearchStage(const CacheEntry& entry) : entry_(entry) {}

  const char* name() const override { return "cached-search"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kInputCircuit}; }
  std::vector<ArtifactId> produces() const override {
    return {ArtifactId::kUpperBound, ArtifactId::kWinningLabels};
  }
  void run(FlowContext& ctx) override;

 private:
  const CacheEntry& entry_;  // owned by the caller for the driver's lifetime
};

}  // namespace turbosyn
