#include "cache/cached_flow.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/trace.hpp"
#include "core/stages/mapgen_stage.hpp"
#include "core/stages/pack_stage.hpp"
#include "core/stages/pipeline_retime_stage.hpp"
#include "netlist/canonical.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A cached entry is usable for this circuit only if its label vector spans
/// the circuit's nodes; anything else means the key matched a different
/// world (should be impossible past the collision check, but stay safe).
bool entry_fits(const CacheEntry& entry, const Circuit& c) {
  return static_cast<int>(entry.winning_labels.size()) == c.num_nodes() && entry.phi >= 1;
}

/// Schema v2 stores winning labels in canonical node order; the replay and
/// the auditor consume them in input-id order. Remaps in place and rewrites
/// the winning probe's label hash so the ledger's certification tie — the
/// feasible record at (mode, φ) hashes the published labels — still holds
/// for this parse's node numbering.
void remap_entry_to_input_order(CacheEntry& entry, const Circuit& c) {
  const std::vector<NodeId> order = canonical_node_order(c);
  std::vector<int> labels(entry.winning_labels.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    labels[static_cast<std::size_t>(order[i])] = entry.winning_labels[i];
  }
  entry.winning_labels = std::move(labels);
  const std::uint64_t input_hash =
      hash_labels(std::span<const int>(entry.winning_labels));
  for (CachedProbe& p : entry.probes) {
    if (p.engine == entry.winner && p.mode == entry.mode && p.phi == entry.phi) {
      p.label_hash = input_hash;
      break;
    }
  }
}

/// One node of a parsed canonical text: its name plus a descriptor covering
/// everything local to the node — kind, truth table, and the fanin slots
/// with driver *names* (not positions) and register weights. Two nodes with
/// equal descriptors whose transitive fanins also all match have isomorphic
/// fanin cones, which is the near-miss label-transfer criterion.
struct CanonNode {
  std::string name;
  std::string desc;
};

/// Parses the body of a canonical form (canonical_circuit_form() minus the
/// leading options line of the cache key). Returns nodes in canonical order,
/// or nullopt on any malformed input — a bad donor is just "no seed".
std::optional<std::vector<CanonNode>> parse_canonical(std::string_view text) {
  std::vector<std::vector<std::string>> lines;  // tokenized node lines
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    std::vector<std::string> tokens;
    std::size_t t = 0;
    while (t < line.size()) {
      while (t < line.size() && line[t] == ' ') ++t;
      std::size_t end = t;
      while (end < line.size() && line[end] != ' ') ++end;
      if (end > t) tokens.emplace_back(line.substr(t, end - t));
      t = end;
    }
    if (!tokens.empty()) lines.push_back(std::move(tokens));
  }
  if (lines.size() < 2 || lines[0] != std::vector<std::string>{"canon", "1"}) {
    return std::nullopt;
  }
  const std::size_t n = lines.size() - 2;  // header + count line
  if (lines[1].size() != 1 || lines[1][0] != std::to_string(n)) return std::nullopt;

  // Pass 1: node names by canonical position (fanins reference positions).
  std::vector<CanonNode> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::string>& tok = lines[i + 2];
    if (tok.size() < 2) return std::nullopt;
    nodes[i].name = tok[1];
  }

  // Pass 2: descriptors with positions resolved to names.
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::string>& tok = lines[i + 2];
    std::string desc = tok[0];
    std::size_t fanin_at = 0;
    if (tok[0] == "pi") {
      if (tok.size() != 2) return std::nullopt;
    } else if (tok[0] == "gate") {
      if (tok.size() < 5) return std::nullopt;
      desc += ' ' + tok[2] + ' ' + tok[3];  // truth-table arity + bits
      fanin_at = 4;
    } else if (tok[0] == "po") {
      if (tok.size() < 3) return std::nullopt;
      fanin_at = 2;
    } else {
      return std::nullopt;
    }
    if (fanin_at != 0) {
      std::size_t nf = 0;
      try {
        nf = std::stoul(tok[fanin_at]);
      } catch (...) {
        return std::nullopt;
      }
      if (tok.size() != fanin_at + 1 + 2 * nf) return std::nullopt;
      for (std::size_t f = 0; f < nf; ++f) {
        std::size_t src = 0;
        try {
          src = std::stoul(tok[fanin_at + 1 + 2 * f]);
        } catch (...) {
          return std::nullopt;
        }
        if (src >= n) return std::nullopt;
        desc += " (";
        desc += nodes[src].name;
        desc += ' ';
        desc += tok[fanin_at + 2 + 2 * f];  // register weight
        desc += ')';
      }
    }
    nodes[i].desc = std::move(desc);
  }
  return nodes;
}

/// Builds the warm seed a near-miss donor justifies for circuit `c`, or
/// nullptr when nothing useful transfers. Soundness (DESIGN.md §12): a node
/// is *tainted* iff it is absent from the donor, its descriptor differs, or
/// any transitive fanin is tainted (forward propagation below). An untainted
/// node's fanin cone is isomorphic to the donor's, so the donor's converged
/// plain-mode label at φ* equals this circuit's least fixpoint there;
/// tainted nodes fall back to the base label. The resulting vector is
/// pointwise ≤ the least fixpoint at any probed φ ≤ φ* (labels are antitone
/// in φ), i.e. a valid monotone seed — and never a certificate.
std::shared_ptr<const WarmImport> derive_near_miss_seed(const Circuit& c,
                                                        std::string_view current_canon,
                                                        const FlowCache::NearMiss& near) {
  if (near.entry.mode != LabelMode::kPlain || near.entry.phi < 1) return nullptr;
  const std::optional<std::vector<CanonNode>> cur = parse_canonical(current_canon);
  const std::optional<std::vector<CanonNode>> donor = parse_canonical(near.canonical_text);
  if (!cur.has_value() || !donor.has_value()) return nullptr;
  if (near.entry.winning_labels.size() != donor->size()) return nullptr;
  const std::vector<NodeId> order = canonical_node_order(c);
  if (order.size() != cur->size()) return nullptr;

  std::unordered_map<std::string_view, std::size_t> donor_by_name;
  donor_by_name.reserve(donor->size());
  for (std::size_t i = 0; i < donor->size(); ++i) {
    donor_by_name.emplace((*donor)[i].name, i);
  }

  const std::size_t n = static_cast<std::size_t>(c.num_nodes());
  std::vector<char> tainted(n, 0);
  auto seed = std::make_shared<WarmImport>();
  seed->phi = near.entry.phi;
  seed->labels.assign(n, 0);
  std::vector<NodeId> frontier;
  for (std::size_t i = 0; i < cur->size(); ++i) {
    const NodeId v = order[i];
    const auto it = donor_by_name.find((*cur)[i].name);
    if (it == donor_by_name.end() || (*donor)[it->second].desc != (*cur)[i].desc) {
      tainted[static_cast<std::size_t>(v)] = 1;
      frontier.push_back(v);
    } else {
      seed->labels[static_cast<std::size_t>(v)] =
          near.entry.winning_labels[it->second];
    }
  }
  if (frontier.empty()) return nullptr;  // identical circuit: exact path owns it

  // Forward taint propagation: an edit invalidates every cone it feeds.
  const CsrTopology& topo = c.topology();
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId v = frontier[head];
    const auto begin = topo.fanout_offset[static_cast<std::size_t>(v)];
    const auto end = topo.fanout_offset[static_cast<std::size_t>(v) + 1];
    for (auto e = begin; e < end; ++e) {
      const NodeId dst = topo.fanout_dst[static_cast<std::size_t>(e)];
      if (!tainted[static_cast<std::size_t>(dst)]) {
        tainted[static_cast<std::size_t>(dst)] = 1;
        seed->labels[static_cast<std::size_t>(dst)] = 0;  // base; engine normalizes
        frontier.push_back(dst);
      }
    }
  }

  // The seed is useful iff at least one updatable gate survived untainted:
  // those gates keep the donor's converged label and stay off the incremental
  // dirty set (the verification sweep still re-proves the fixpoint, so an
  // imprecise hint costs time, never correctness).
  bool transfers = false;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!topo.flag(v, CsrTopology::kUpdatableGate)) continue;
    if (tainted[static_cast<std::size_t>(v)]) {
      seed->dirty_hint.push_back(v);
    } else {
      transfers = true;
    }
  }
  return transfers ? seed : nullptr;
}

/// Replays a hit's artifacts through the staged driver. `period_objective`
/// selects the downstream config exactly as run_engine() would: mapgen caps
/// relaxation at the PO labels and the timing tail retimes without
/// pipelining. mapgen → pack → retime are deterministic functions of
/// (circuit, labels, φ, options), so the replay is bit-identical to the
/// stored run.
FlowResult replay_from_entry(const std::string& trace_label, bool period_objective,
                             const Circuit& c, const FlowOptions& options,
                             const CacheEntry& entry) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, trace_label + " (cache hit)");
  FlowDriver driver(c, options);
  StageList stages;
  stages.push_back(std::make_unique<CachedSearchStage>(entry));
  stages.push_back(std::make_unique<MapGenStage>(/*po_label_limit=*/period_objective));
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(std::make_unique<PipelineRetimeStage>(
      period_objective ? PipelineRetimeStage::Kind::kRetimeOnly
                       : PipelineRetimeStage::Kind::kPipelineRetime));
  driver.run(stages);
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

/// Observability (DESIGN.md §13): the cache's cumulative fault/recovery
/// counters into the trace stream — recovered_* say how much corruption was
/// detected and absorbed (never served), retries how many store attempts
/// re-ran after a transient failure. One span per cached run, so trace
/// consumers can watch the counters move across a batch.
void trace_cache_counters(TraceSink* trace, const FlowCache& cache) {
  if (trace == nullptr) return;
  TraceSpan span(trace, "cache:counters");
  span.counter("cache_hits", cache.hits());
  span.counter("cache_misses", cache.misses());
  span.counter("cache_stores", cache.stores());
  span.counter("cache_rejects", cache.rejects());
  span.counter("recovered_entries", cache.recovered_entries());
  span.counter("recovered_tmp", cache.recovered_tmp());
  span.counter("recovered_sidecars", cache.recovered_sidecars());
  span.counter("retries", cache.retries());
  span.counter("hot_hits", cache.hot_hits());
  span.counter("hot_evictions", cache.hot_evictions());
  span.counter("hot_cost_evictions", cache.hot_cost_evictions());
  // Counters are integral; retained wall time rides as whole milliseconds.
  span.counter("hot_cost_retained_ms",
               static_cast<std::int64_t>(cache.hot_cost_retained_seconds() * 1000.0));
}

/// Near-miss warm start, shared by the flow and portfolio miss paths: if a
/// donor entry for the same options line ran on a structurally similar
/// circuit, transfer its converged labels where the fanin cones still match
/// (derive_near_miss_seed above). The seed only accelerates convergence —
/// probes still prove their fixpoints, so the result stays bit-identical to
/// a cold run.
void maybe_warm_start(const Circuit& c, const CacheKey& key, const FlowCache& cache,
                      const FlowOptions& options, FlowOptions& run_options,
                      CacheRunInfo* info) {
  if (!options.incremental || options.warm_import != nullptr) return;
  const std::optional<FlowCache::NearMiss> near = cache.lookup_near(key);
  if (!near.has_value()) return;
  const std::size_t nl = key.text.find('\n');
  if (nl == std::string::npos) return;
  if (auto seed =
          derive_near_miss_seed(c, std::string_view(key.text).substr(nl + 1), *near);
      seed != nullptr) {
    run_options.warm_import = std::move(seed);
    if (info != nullptr) info->near_miss = true;
  }
}

}  // namespace

void CachedSearchStage::run(FlowContext& ctx) {
  ctx.label_mode = entry_.mode;
  ctx.result.phi = entry_.phi;
  // The replay runs no search, but downstream contracts want the bound the
  // original search ran under: the largest φ the ledger ever saw.
  int ub = entry_.phi;
  for (const CachedProbe& p : entry_.probes) ub = std::max(ub, p.phi);
  ctx.ub = ub;

  ctx.labels = LabelResult{};
  ctx.labels.feasible = true;
  ctx.labels.labels = entry_.winning_labels;
  ctx.labels.max_po_label = entry_.max_po_label;
  ctx.labels.status = Status::kOk;
  ctx.have_labels = true;

  for (const CachedProbe& p : entry_.probes) {
    ProbeRecord rec;
    rec.engine = p.engine;
    rec.phi = p.phi;
    rec.mode = p.mode;
    rec.outcome = p.outcome;
    rec.status = p.status;
    rec.feasible = p.feasible;
    rec.imported = true;  // provenance: this run probed nothing
    rec.label_hash = p.label_hash;
    rec.max_po_label = p.max_po_label;
    ctx.ledger.record(std::move(rec));
  }
  ctx.count("imported_probes", static_cast<std::int64_t>(entry_.probes.size()));
}

FlowResult run_flow_cached(FlowKind kind, const Circuit& c, const FlowOptions& options,
                           FlowCache* cache, CacheRunInfo* info) {
  if (info != nullptr) *info = CacheRunInfo{};
  // FlowSYN-s records no probe ledger and no label artifacts: nothing to
  // reuse, so it always runs plain.
  if (cache == nullptr || kind == FlowKind::kFlowSynS) {
    return run_flow(kind, c, options);
  }

  const CacheKey key = make_cache_key(c, options, kind);
  if (std::optional<CacheEntry> entry = cache->lookup(key);
      entry.has_value() && entry_fits(*entry, c) && entry->winner.empty()) {
    remap_entry_to_input_order(*entry, c);
    FlowResult result =
        replay_from_entry(std::string("flow:") + flow_kind_name(kind),
                          kind == FlowKind::kTurboMapPeriod, c, options, *entry);
    if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
    if (info != nullptr) info->hit = true;
    trace_cache_counters(options.trace, *cache);
    return result;
  }

  // Miss: run for real, collecting the winning labels the store needs even
  // when the caller did not ask for audit artifacts (collection does not
  // change the mapping — the fuzzer's bit-identity checks cover this).
  FlowOptions run_options = options;
  run_options.collect_artifacts = true;
  maybe_warm_start(c, key, *cache, options, run_options, info);
  FlowResult result = run_flow(kind, c, run_options);
  const bool stored = cache->store_result(key, result, c);
  if (info != nullptr) info->stored = stored;
  if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
  trace_cache_counters(options.trace, *cache);
  return result;
}

FlowResult run_portfolio_cached(const std::vector<const EngineSpec*>& engines,
                                const Circuit& c, const FlowOptions& options,
                                const PortfolioOptions& popt, FlowCache* cache,
                                CacheRunInfo* info) {
  if (info != nullptr) *info = CacheRunInfo{};
  if (cache == nullptr) return run_portfolio(engines, c, options, popt);

  const CacheKey key = make_portfolio_cache_key(c, options, engines);
  if (std::optional<CacheEntry> entry = cache->lookup(key);
      entry.has_value() && entry_fits(*entry, c)) {
    // Resolve the stored winner against the requested race. The byte-compared
    // key already pins the engine list, so a missing name means a corrupt or
    // hand-edited entry — degrade to a miss, never guess.
    const EngineSpec* winner = nullptr;
    for (const EngineSpec* spec : engines) {
      if (spec->name == entry->winner) winner = spec;
    }
    if (winner != nullptr) {
      remap_entry_to_input_order(*entry, c);
      // The winner's option deltas governed the stored run; resolve them
      // before replay so the regenerated mapping matches bit for bit.
      FlowResult result = replay_from_entry("flow:portfolio", winner->period_objective, c,
                                            winner->apply(options), *entry);
      result.engine = entry->winner;
      if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
      if (info != nullptr) info->hit = true;
      trace_cache_counters(options.trace, *cache);
      return result;
    }
  }

  FlowOptions run_options = options;
  run_options.collect_artifacts = true;
  maybe_warm_start(c, key, *cache, options, run_options, info);
  FlowResult result = run_portfolio(engines, c, run_options, popt);
  const bool stored = cache->store_result(key, result, c);
  if (info != nullptr) info->stored = stored;
  if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
  trace_cache_counters(options.trace, *cache);
  return result;
}

}  // namespace turbosyn
