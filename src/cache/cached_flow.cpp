#include "cache/cached_flow.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "base/trace.hpp"
#include "core/stages/mapgen_stage.hpp"
#include "core/stages/pack_stage.hpp"
#include "core/stages/pipeline_retime_stage.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A cached entry is usable for this circuit only if its label vector spans
/// the circuit's nodes; anything else means the key matched a different
/// world (should be impossible past the collision check, but stay safe).
bool entry_fits(const CacheEntry& entry, const Circuit& c) {
  return static_cast<int>(entry.winning_labels.size()) == c.num_nodes() && entry.phi >= 1;
}

FlowResult replay_from_entry(FlowKind kind, const Circuit& c, const FlowOptions& options,
                             const CacheEntry& entry) {
  const auto start = Clock::now();
  TraceSpan span(options.trace,
                 std::string("flow:") + flow_kind_name(kind) + " (cache hit)");
  FlowDriver driver(c, options);
  StageList stages;
  stages.push_back(std::make_unique<CachedSearchStage>(entry));
  stages.push_back(
      std::make_unique<MapGenStage>(/*po_label_limit=*/kind == FlowKind::kTurboMapPeriod));
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(std::make_unique<PipelineRetimeStage>(
      kind == FlowKind::kTurboMapPeriod ? PipelineRetimeStage::Kind::kRetimeOnly
                                        : PipelineRetimeStage::Kind::kPipelineRetime));
  driver.run(stages);
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace

void CachedSearchStage::run(FlowContext& ctx) {
  ctx.label_mode = entry_.mode;
  ctx.result.phi = entry_.phi;
  // The replay runs no search, but downstream contracts want the bound the
  // original search ran under: the largest φ the ledger ever saw.
  int ub = entry_.phi;
  for (const CachedProbe& p : entry_.probes) ub = std::max(ub, p.phi);
  ctx.ub = ub;

  ctx.labels = LabelResult{};
  ctx.labels.feasible = true;
  ctx.labels.labels = entry_.winning_labels;
  ctx.labels.max_po_label = entry_.max_po_label;
  ctx.labels.status = Status::kOk;
  ctx.have_labels = true;

  for (const CachedProbe& p : entry_.probes) {
    ProbeRecord rec;
    rec.phi = p.phi;
    rec.mode = p.mode;
    rec.outcome = p.outcome;
    rec.status = p.status;
    rec.feasible = p.feasible;
    rec.imported = true;  // provenance: this run probed nothing
    rec.label_hash = p.label_hash;
    rec.max_po_label = p.max_po_label;
    ctx.ledger.record(std::move(rec));
  }
  ctx.count("imported_probes", static_cast<std::int64_t>(entry_.probes.size()));
}

FlowResult run_flow_cached(FlowKind kind, const Circuit& c, const FlowOptions& options,
                           FlowCache* cache, CacheRunInfo* info) {
  if (info != nullptr) *info = CacheRunInfo{};
  // FlowSYN-s records no probe ledger and no label artifacts: nothing to
  // reuse, so it always runs plain.
  if (cache == nullptr || kind == FlowKind::kFlowSynS) {
    return run_flow(kind, c, options);
  }

  const CacheKey key = make_cache_key(c, options, kind);
  if (const std::optional<CacheEntry> entry = cache->lookup(key);
      entry.has_value() && entry_fits(*entry, c)) {
    FlowResult result = replay_from_entry(kind, c, options, *entry);
    if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
    if (info != nullptr) info->hit = true;
    return result;
  }

  // Miss: run for real, collecting the winning labels the store needs even
  // when the caller did not ask for audit artifacts (collection does not
  // change the mapping — the fuzzer's bit-identity checks cover this).
  FlowOptions run_options = options;
  run_options.collect_artifacts = true;
  FlowResult result = run_flow(kind, c, run_options);
  const bool stored = cache->store_result(key, result);
  if (info != nullptr) info->stored = stored;
  if (!options.collect_artifacts) result.artifacts = FlowArtifacts{};
  return result;
}

}  // namespace turbosyn
