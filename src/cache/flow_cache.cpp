#include "cache/flow_cache.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>

#include "netlist/blif.hpp"
#include "netlist/canonical.hpp"

namespace turbosyn {
namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// Sequential reader over a loaded entry file. Every getter reports failure
/// through ok(); parsing stops caring about the content once ok() is false.
class EntryReader {
 public:
  explicit EntryReader(std::string content) : content_(std::move(content)) {}

  bool ok() const { return ok_; }

  /// The next whitespace-delimited token.
  std::string token() {
    while (pos_ < content_.size() && std::isspace(static_cast<unsigned char>(content_[pos_]))) {
      ++pos_;
    }
    const std::size_t start = pos_;
    while (pos_ < content_.size() &&
           !std::isspace(static_cast<unsigned char>(content_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) ok_ = false;
    return content_.substr(start, pos_ - start);
  }

  void expect(const char* literal) {
    if (token() != literal) ok_ = false;
  }

  std::int64_t integer() {
    const std::string t = token();
    if (!ok_) return 0;
    try {
      std::size_t used = 0;
      const std::int64_t value = std::stoll(t, &used);
      if (used != t.size()) ok_ = false;
      return value;
    } catch (...) {
      ok_ = false;
      return 0;
    }
  }

  std::uint64_t hex() {
    const std::string t = token();
    if (!ok_) return 0;
    try {
      std::size_t used = 0;
      const std::uint64_t value = std::stoull(t, &used, 16);
      if (used != t.size()) ok_ = false;
      return value;
    } catch (...) {
      ok_ = false;
      return 0;
    }
  }

  /// A length-prefixed raw segment: the byte count was just read; one
  /// separator character follows, then exactly `n` raw bytes.
  std::string raw(std::int64_t n) {
    if (n < 0 || pos_ >= content_.size()) {
      ok_ = false;
      return {};
    }
    ++pos_;  // the single separator after the length token
    if (pos_ + static_cast<std::size_t>(n) > content_.size()) {
      ok_ = false;
      return {};
    }
    const std::string segment = content_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return segment;
  }

 private:
  std::string content_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool in_range(std::int64_t value, std::int64_t lo, std::int64_t hi) {
  return value >= lo && value <= hi;
}

}  // namespace

CacheKey make_cache_key(const Circuit& c, const FlowOptions& options, FlowKind kind) {
  std::ostringstream os;
  os << "flow " << flow_kind_name(kind) << " k " << options.k << " cmax " << options.cmax
     << " height_span " << options.height_span << " pld " << options.use_pld << " bdd "
     << options.use_bdd << " relax " << options.label_relaxation << " lowcost "
     << options.low_cost_cuts << " dedupe " << options.dedupe << " pack " << options.pack
     << " pipeline " << options.pipeline << " exp " << options.expansion.extra_levels << ' '
     << options.expansion.node_budget << '\n';
  CacheKey key;
  key.text = os.str() + canonical_circuit_form(c).text;
  key.hash = fnv1a64(key.text);
  return key;
}

FlowCache::FlowCache(std::string dir) : dir_(std::move(dir)) {}

std::string FlowCache::entry_path(const CacheKey& key) const {
  return dir_ + "/" + hex64(key.hash) + ".tsce";
}

bool FlowCache::storable(const FlowResult& result) {
  return result.status == Status::kOk && !result.timed_out && result.artifacts.valid &&
         result.artifacts.labels.feasible && !result.probes.empty();
}

CacheEntry FlowCache::entry_from_result(const FlowResult& result) {
  CacheEntry entry;
  entry.phi = result.artifacts.phi;
  entry.mode = result.artifacts.mode;
  entry.max_po_label = result.artifacts.labels.max_po_label;
  entry.winning_labels = result.artifacts.labels.labels;
  entry.probes.reserve(result.probes.size());
  for (const ProbeRecord& rec : result.probes) {
    CachedProbe p;
    p.phi = rec.phi;
    p.mode = rec.mode;
    p.outcome = rec.outcome;
    p.status = rec.status;
    p.feasible = rec.feasible;
    p.label_hash = rec.label_hash;
    p.max_po_label = rec.max_po_label;
    entry.probes.push_back(p);
  }
  entry.luts = result.luts;
  entry.ffs = result.ffs;
  entry.mdr_num = result.exact_mdr.num();
  entry.mdr_den = result.exact_mdr.den();
  entry.period = result.period;
  entry.pipeline_stages = result.pipeline_stages;
  entry.mapped_blif = write_blif_string(result.mapped, "mapped");
  return entry;
}

std::optional<CacheEntry> FlowCache::lookup(const CacheKey& key) const {
  const auto miss = [this]() -> std::optional<CacheEntry> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return miss();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return miss();

  EntryReader r(buffer.str());
  r.expect("turbosyn-cache");
  if (r.integer() != kSchemaVersion) return miss();
  r.expect("hash");
  if (r.hex() != key.hash) return miss();
  r.expect("key");
  // Collision check: the stored canonical key must match byte for byte.
  if (r.raw(r.integer()) != key.text) return miss();
  r.expect("status");
  if (r.token() != "ok") return miss();  // quarantined (degraded) entry

  CacheEntry entry;
  r.expect("phi");
  entry.phi = static_cast<int>(r.integer());
  r.expect("mode");
  const std::int64_t mode = r.integer();
  if (!in_range(mode, 0, 1)) return miss();
  entry.mode = static_cast<LabelMode>(mode);
  r.expect("maxpo");
  entry.max_po_label = static_cast<int>(r.integer());
  r.expect("result");
  entry.luts = static_cast<int>(r.integer());
  entry.ffs = r.integer();
  entry.mdr_num = r.integer();
  entry.mdr_den = r.integer();
  entry.period = r.integer();
  entry.pipeline_stages = static_cast<int>(r.integer());

  r.expect("probes");
  const std::int64_t num_probes = r.integer();
  if (!r.ok() || !in_range(num_probes, 1, 1 << 20)) return miss();
  entry.probes.reserve(static_cast<std::size_t>(num_probes));
  for (std::int64_t i = 0; i < num_probes && r.ok(); ++i) {
    CachedProbe p;
    r.expect("p");
    const std::int64_t probe_mode = r.integer();
    if (!in_range(probe_mode, 0, 1)) return miss();
    p.mode = static_cast<LabelMode>(probe_mode);
    p.phi = static_cast<int>(r.integer());
    const std::int64_t outcome = r.integer();
    if (!in_range(outcome, 0, 3)) return miss();
    p.outcome = static_cast<ProbeOutcome>(outcome);
    const std::int64_t status = r.integer();
    if (!in_range(status, 0, 4)) return miss();
    p.status = static_cast<Status>(status);
    p.feasible = r.integer() != 0;
    p.label_hash = r.hex();
    p.max_po_label = static_cast<int>(r.integer());
    entry.probes.push_back(p);
  }

  r.expect("labels");
  const std::int64_t num_labels = r.integer();
  if (!r.ok() || !in_range(num_labels, 1, 1 << 26)) return miss();
  entry.winning_labels.reserve(static_cast<std::size_t>(num_labels));
  for (std::int64_t i = 0; i < num_labels && r.ok(); ++i) {
    entry.winning_labels.push_back(static_cast<int>(r.integer()));
  }

  r.expect("blif");
  entry.mapped_blif = r.raw(r.integer());
  r.expect("end");
  if (!r.ok()) return miss();

  // Internal consistency: the winning labels must be certified by a feasible
  // ledger record whose hash matches them (the same tie the auditor checks).
  const std::uint64_t winning_hash =
      hash_labels(std::span<const int>(entry.winning_labels));
  bool certified = false;
  for (const CachedProbe& p : entry.probes) {
    if (p.mode == entry.mode && p.phi == entry.phi) {
      certified = p.feasible && p.label_hash == winning_hash && p.status == Status::kOk;
      break;
    }
  }
  if (!certified) return miss();

  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

bool FlowCache::store_result(const CacheKey& key, const FlowResult& result) {
  if (!storable(result)) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return store(key, entry_from_result(result));
}

bool FlowCache::store(const CacheKey& key, const CacheEntry& entry) {
  if (entry.winning_labels.empty() || entry.probes.empty()) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::ostringstream os;
  os << "turbosyn-cache " << kSchemaVersion << '\n';
  os << "hash " << hex64(key.hash) << '\n';
  os << "key " << key.text.size() << '\n' << key.text << '\n';
  os << "status ok\n";
  os << "phi " << entry.phi << " mode " << static_cast<int>(entry.mode) << " maxpo "
     << entry.max_po_label << '\n';
  os << "result " << entry.luts << ' ' << entry.ffs << ' ' << entry.mdr_num << ' '
     << entry.mdr_den << ' ' << entry.period << ' ' << entry.pipeline_stages << '\n';
  os << "probes " << entry.probes.size() << '\n';
  for (const CachedProbe& p : entry.probes) {
    os << "p " << static_cast<int>(p.mode) << ' ' << p.phi << ' '
       << static_cast<int>(p.outcome) << ' ' << static_cast<int>(p.status) << ' '
       << (p.feasible ? 1 : 0) << ' ' << hex64(p.label_hash) << ' ' << p.max_po_label
       << '\n';
  }
  os << "labels " << entry.winning_labels.size() << '\n';
  for (std::size_t i = 0; i < entry.winning_labels.size(); ++i) {
    os << entry.winning_labels[i] << (i + 1 == entry.winning_labels.size() ? '\n' : ' ');
  }
  os << "blif " << entry.mapped_blif.size() << '\n' << entry.mapped_blif << '\n';
  os << "end\n";

  // Unique tmp name per writer, then an atomic rename: concurrent stores of
  // the same key are last-writer-wins with no torn intermediate state.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string final_path = entry_path(key);
  const std::string tmp_path = final_path + ".tmp." + std::to_string(::getpid()) + "." +
                               std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    out << os.str();
    out.flush();
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace turbosyn
