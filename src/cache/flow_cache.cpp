#include "cache/flow_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "base/failpoint.hpp"
#include "netlist/blif.hpp"
#include "netlist/canonical.hpp"

namespace turbosyn {
namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// Round-trippable decimal form of a wall-time value: %.17g reproduces the
/// exact double on re-parse, so a store → lookup cycle keeps the cost
/// bit-identical.
std::string real_token(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

/// Sequential reader over a loaded entry file. Every getter reports failure
/// through ok(); parsing stops caring about the content once ok() is false.
class EntryReader {
 public:
  explicit EntryReader(std::string content) : content_(std::move(content)) {}

  bool ok() const { return ok_; }

  /// The next whitespace-delimited token.
  std::string token() {
    while (pos_ < content_.size() && std::isspace(static_cast<unsigned char>(content_[pos_]))) {
      ++pos_;
    }
    const std::size_t start = pos_;
    while (pos_ < content_.size() &&
           !std::isspace(static_cast<unsigned char>(content_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) ok_ = false;
    return content_.substr(start, pos_ - start);
  }

  void expect(const char* literal) {
    if (token() != literal) ok_ = false;
  }

  std::int64_t integer() {
    const std::string t = token();
    if (!ok_) return 0;
    try {
      std::size_t used = 0;
      const std::int64_t value = std::stoll(t, &used);
      if (used != t.size()) ok_ = false;
      return value;
    } catch (...) {
      ok_ = false;
      return 0;
    }
  }

  std::uint64_t hex() {
    const std::string t = token();
    if (!ok_) return 0;
    try {
      std::size_t used = 0;
      const std::uint64_t value = std::stoull(t, &used, 16);
      if (used != t.size()) ok_ = false;
      return value;
    } catch (...) {
      ok_ = false;
      return 0;
    }
  }

  /// A non-negative finite real (the schema v5 "cost" field).
  double real() {
    const std::string t = token();
    if (!ok_) return 0.0;
    try {
      std::size_t used = 0;
      const double value = std::stod(t, &used);
      if (used != t.size() || !(value >= 0.0) || !std::isfinite(value)) ok_ = false;
      return value;
    } catch (...) {
      ok_ = false;
      return 0.0;
    }
  }

  /// A length-prefixed raw segment: the byte count was just read; one
  /// separator character follows, then exactly `n` raw bytes.
  std::string raw(std::int64_t n) {
    if (n < 0 || pos_ >= content_.size()) {
      ok_ = false;
      return {};
    }
    ++pos_;  // the single separator after the length token
    if (pos_ + static_cast<std::size_t>(n) > content_.size()) {
      ok_ = false;
      return {};
    }
    const std::string segment = content_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return segment;
  }

  /// Byte offset just past the last consumed token (for the checksum
  /// trailer's coverage check).
  std::size_t offset() const { return pos_; }

 private:
  std::string content_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// True when an armed read-path failpoint says this read fails. Reads never
/// retry — the caller degrades to a miss, which is sound and cheap. A kThrow
/// policy is absorbed here too: lookup paths never throw.
bool read_fault(const char* site) {
  if (!failpoint::enabled()) return false;
  try {
    return failpoint::check(site).action == failpoint::Action::kError;
  } catch (...) {
    return true;
  }
}

bool in_range(std::int64_t value, std::int64_t lo, std::int64_t hi) {
  return value >= lo && value <= hi;
}

/// Engine tags are single tokens in the line-oriented schema, so the empty
/// tag (standalone runs) rides as "-" — never a legal engine name.
std::string engine_token(const std::string& engine) {
  return engine.empty() ? "-" : engine;
}

std::string engine_from_token(const std::string& token) {
  return token == "-" ? std::string() : token;
}

/// A fully parsed and internally certified entry file, before any key check.
struct ParsedEntry {
  CacheEntry entry;
  std::string key_text;     // the stored canonical key (options + circuit)
  std::uint64_t hash = 0;   // the stored key hash
};

/// Loads and validates one entry file: schema version, field ranges, the
/// checksum trailer, and the internal certification tie between the winning
/// labels and a feasible ledger record. Does NOT compare against any caller
/// key — exact lookup and near-miss lookup apply their own checks on top.
/// nullopt on any defect. `existed` (optional) reports whether a file was
/// there at all, so callers can tell a plain miss from a torn entry.
std::optional<ParsedEntry> parse_entry_file(const std::string& path,
                                            bool* existed = nullptr) {
  if (existed != nullptr) *existed = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  if (existed != nullptr) *existed = true;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  const std::string content = buffer.str();

  EntryReader r(content);
  r.expect("turbosyn-cache");
  if (r.integer() != FlowCache::kSchemaVersion) return std::nullopt;
  ParsedEntry parsed;
  r.expect("hash");
  parsed.hash = r.hex();
  r.expect("key");
  parsed.key_text = r.raw(r.integer());
  if (!r.ok() || fnv1a64(parsed.key_text) != parsed.hash) return std::nullopt;
  r.expect("status");
  if (r.token() != "ok") return std::nullopt;  // quarantined (degraded) entry

  CacheEntry& entry = parsed.entry;
  r.expect("winner");
  entry.winner = engine_from_token(r.token());
  r.expect("phi");
  entry.phi = static_cast<int>(r.integer());
  r.expect("mode");
  const std::int64_t mode = r.integer();
  if (!in_range(mode, 0, 1)) return std::nullopt;
  entry.mode = static_cast<LabelMode>(mode);
  r.expect("maxpo");
  entry.max_po_label = static_cast<int>(r.integer());
  r.expect("result");
  entry.luts = static_cast<int>(r.integer());
  entry.ffs = r.integer();
  entry.mdr_num = r.integer();
  entry.mdr_den = r.integer();
  entry.period = r.integer();
  entry.pipeline_stages = static_cast<int>(r.integer());
  r.expect("cost");
  entry.flow_wall_seconds = r.real();

  r.expect("probes");
  const std::int64_t num_probes = r.integer();
  if (!r.ok() || !in_range(num_probes, 1, 1 << 20)) return std::nullopt;
  entry.probes.reserve(static_cast<std::size_t>(num_probes));
  for (std::int64_t i = 0; i < num_probes && r.ok(); ++i) {
    CachedProbe p;
    r.expect("p");
    p.engine = engine_from_token(r.token());
    const std::int64_t probe_mode = r.integer();
    if (!in_range(probe_mode, 0, 1)) return std::nullopt;
    p.mode = static_cast<LabelMode>(probe_mode);
    p.phi = static_cast<int>(r.integer());
    const std::int64_t outcome = r.integer();
    if (!in_range(outcome, 0, 3)) return std::nullopt;
    p.outcome = static_cast<ProbeOutcome>(outcome);
    // kFailed (5) is deliberately out of range: a contained stage failure can
    // never belong to a storable (kOk) run, so an entry carrying one is
    // corruption, not data.
    const std::int64_t status = r.integer();
    if (!in_range(status, 0, 4)) return std::nullopt;
    p.status = static_cast<Status>(status);
    p.feasible = r.integer() != 0;
    p.label_hash = r.hex();
    p.max_po_label = static_cast<int>(r.integer());
    entry.probes.push_back(p);
  }

  r.expect("labels");
  const std::int64_t num_labels = r.integer();
  if (!r.ok() || !in_range(num_labels, 1, 1 << 26)) return std::nullopt;
  entry.winning_labels.reserve(static_cast<std::size_t>(num_labels));
  for (std::int64_t i = 0; i < num_labels && r.ok(); ++i) {
    entry.winning_labels.push_back(static_cast<int>(r.integer()));
  }

  r.expect("blif");
  entry.mapped_blif = r.raw(r.integer());
  r.expect("end");
  if (!r.ok()) return std::nullopt;

  // Checksum trailer (schema v3): "sum <n> <hex64>", FNV-1a over the first n
  // bytes. Catches torn writes and bit rot that still tokenize — a spliced
  // or truncated-and-repaired file cannot keep the checksum. The trailer
  // must cover at least everything parsed above; a shorter span could
  // validate a file whose tail was swapped out.
  const std::size_t parsed_bytes = r.offset();
  r.expect("sum");
  const std::int64_t sum_len = r.integer();
  const std::uint64_t sum_hash = r.hex();
  if (!r.ok() || sum_len < static_cast<std::int64_t>(parsed_bytes) ||
      sum_len > static_cast<std::int64_t>(content.size())) {
    return std::nullopt;
  }
  if (fnv1a64(std::string_view(content).substr(0, static_cast<std::size_t>(sum_len))) !=
      sum_hash) {
    return std::nullopt;
  }

  // Internal consistency: the winning labels must be certified by a feasible
  // ledger record whose hash matches them (the same tie the auditor checks).
  // v2 stores labels in canonical order; the hash is over that order. v4:
  // the certifying record must belong to the winning engine — a merged
  // portfolio ledger can hold several records at the same (mode, φ).
  const std::uint64_t winning_hash =
      hash_labels(std::span<const int>(entry.winning_labels));
  bool certified = false;
  for (const CachedProbe& p : entry.probes) {
    if (p.engine == entry.winner && p.mode == entry.mode && p.phi == entry.phi) {
      certified = p.feasible && p.label_hash == winning_hash && p.status == Status::kOk;
      break;
    }
  }
  if (!certified) return std::nullopt;
  return parsed;
}

}  // namespace

namespace {

/// The result-relevant caller options, shared by both key makers. Excludes
/// num_threads / budgets / observability knobs (see make_cache_key docs).
void append_option_fields(std::ostringstream& os, const FlowOptions& options) {
  os << " k " << options.k << " cmax " << options.cmax << " height_span "
     << options.height_span << " pld " << options.use_pld << " bdd " << options.use_bdd
     << " relax " << options.label_relaxation << " lowcost " << options.low_cost_cuts
     << " dedupe " << options.dedupe << " pack " << options.pack << " pipeline "
     << options.pipeline << " exp " << options.expansion.extra_levels << ' '
     << options.expansion.node_budget << '\n';
}

/// Finishes a key from its options line: full text, hash, near-miss sketch.
CacheKey finish_cache_key(const Circuit& c, const std::string& options_line) {
  CacheKey key;
  key.text = options_line + canonical_circuit_form(c).text;
  key.hash = fnv1a64(key.text);
  // Near-miss sketch: options line + sorted interface names. Internal edits
  // (gate logic, wiring, added/removed gates) keep the sketch, so the edited
  // circuit's miss can still find this entry as a warm-start donor.
  std::vector<std::string> interface_names;
  interface_names.reserve(static_cast<std::size_t>(c.num_pis() + c.num_pos()));
  for (const NodeId v : c.pis()) interface_names.push_back("i " + c.name(v));
  for (const NodeId v : c.pos()) interface_names.push_back("o " + c.name(v));
  std::sort(interface_names.begin(), interface_names.end());
  std::uint64_t sketch = fnv1a64(options_line);
  for (const std::string& name : interface_names) sketch = fnv1a64(name + "\n", sketch);
  key.near_sketch = sketch;
  return key;
}

}  // namespace

CacheKey make_cache_key(const Circuit& c, const FlowOptions& options, FlowKind kind) {
  std::ostringstream os;
  os << "flow " << flow_kind_name(kind);
  append_option_fields(os, options);
  return finish_cache_key(c, os.str());
}

CacheKey make_portfolio_cache_key(const Circuit& c, const FlowOptions& options,
                                  const std::vector<const EngineSpec*>& engines) {
  // The ordered engine list with per-spec fingerprints: order matters (it is
  // the selection tie-break), and the fingerprint covers every spec-side
  // delta, so editing a registry engine invalidates its portfolios' entries.
  std::ostringstream os;
  os << "portfolio";
  for (const EngineSpec* spec : engines) {
    os << ' ' << spec->name << '=' << fnv1a64(spec->fingerprint());
  }
  append_option_fields(os, options);
  return finish_cache_key(c, os.str());
}

const char* hot_policy_name(HotPolicy policy) {
  return policy == HotPolicy::kCostAware ? "cost-aware" : "recency";
}

std::optional<HotPolicy> parse_hot_policy(std::string_view name) {
  if (name == "recency") return HotPolicy::kRecency;
  if (name == "cost-aware") return HotPolicy::kCostAware;
  return std::nullopt;
}

FlowCache::FlowCache(std::string dir) : dir_(std::move(dir)) {}

namespace {

/// Estimated resident size of one hot-tier entry: the dominant heap blocks
/// (key text, mapped BLIF, labels, probes) plus the bookkeeping structs.
/// An estimate is enough — the cap bounds memory to the right order, it is
/// not an allocator ledger.
std::size_t hot_entry_size(const std::string& key_text, const CacheEntry& entry) {
  return sizeof(CacheEntry) + 2 * sizeof(void*) + key_text.size() +
         entry.mapped_blif.size() + entry.winning_labels.size() * sizeof(int) +
         entry.probes.size() * sizeof(CachedProbe);
}

}  // namespace

void FlowCache::enable_hot_tier(std::size_t max_bytes, std::size_t max_entries) {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  hot_max_bytes_ = max_bytes;
  hot_max_entries_ = max_entries;
  if (hot_max_bytes_ == 0) {
    hot_index_.clear();
    hot_lru_.clear();
    hot_bytes_now_ = 0;
    return;
  }
  hot_evict_locked();  // shrinking the caps evicts down immediately
}

bool FlowCache::hot_tier_enabled() const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  return hot_max_bytes_ > 0;
}

void FlowCache::set_hot_policy(HotPolicy policy) {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  hot_policy_ = policy;
}

HotPolicy FlowCache::hot_policy() const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  return hot_policy_;
}

double FlowCache::hot_cost_retained_seconds() const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  return hot_cost_retained_seconds_;
}

std::int64_t FlowCache::hot_entries() const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  return static_cast<std::int64_t>(hot_lru_.size());
}

std::int64_t FlowCache::hot_bytes() const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  return static_cast<std::int64_t>(hot_bytes_now_);
}

namespace {

/// The kCostAware eviction score: the entry's probe wall time decayed by a
/// half-life of `kHotHalfLife` hot-tier accesses since it was last touched.
/// Purely logical time (access ticks, not wall clock), so the victim
/// sequence is a deterministic function of the access sequence — which the
/// fuzz oracle and the eviction-order tests rely on.
constexpr double kHotHalfLife = 16.0;

double hot_score(double cost, std::uint64_t now, std::uint64_t last_use) {
  const double age = static_cast<double>(now - last_use);
  return cost * std::exp2(-age / kHotHalfLife);
}

}  // namespace

void FlowCache::hot_evict_locked() const {
  while (!hot_lru_.empty() &&
         (hot_bytes_now_ > hot_max_bytes_ ||
          (hot_max_entries_ > 0 && hot_lru_.size() > hot_max_entries_))) {
    // Recency: the LRU tail. Cost-aware: the minimum decayed-cost score,
    // ties broken toward the older last_use (and ultimately toward the tail,
    // which the backward scan's strict `<` guarantees) — so zero-cost
    // entries degrade to exact LRU order.
    auto victim_it = std::prev(hot_lru_.end());
    if (hot_policy_ == HotPolicy::kCostAware && hot_lru_.size() > 1) {
      double best = hot_score(victim_it->cost, hot_tick_, victim_it->last_use);
      std::uint64_t best_last = victim_it->last_use;
      for (auto it = std::prev(victim_it);; --it) {
        const double score = hot_score(it->cost, hot_tick_, it->last_use);
        if (score < best || (score == best && it->last_use < best_last)) {
          best = score;
          best_last = it->last_use;
          victim_it = it;
        }
        if (it == hot_lru_.begin()) break;
      }
      if (std::next(victim_it) != hot_lru_.end()) {
        // The score spared the LRU tail: count the eviction as cost-driven
        // and credit the recompute seconds the tail keeps resident.
        hot_cost_evictions_.fetch_add(1, std::memory_order_relaxed);
        hot_cost_retained_seconds_ += hot_lru_.back().cost;
      }
    }
    hot_bytes_now_ -= std::min(hot_bytes_now_, victim_it->bytes);
    hot_index_.erase(victim_it->hash);
    hot_lru_.erase(victim_it);
    hot_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<CacheEntry> FlowCache::hot_lookup(const CacheKey& key) const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  if (hot_max_bytes_ == 0) return std::nullopt;
  const auto it = hot_index_.find(key.hash);
  if (it == hot_index_.end()) return std::nullopt;
  // Same rule as disk: hash equality is never trusted. A 64-bit collision
  // degrades to a (disk) miss for the colliding key, never a wrong artifact.
  if (it->second->key_text != key.text) return std::nullopt;
  hot_lru_.splice(hot_lru_.begin(), hot_lru_, it->second);  // bump to MRU
  it->second->last_use = ++hot_tick_;
  hot_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->entry;  // a copy: callers remap their copy in place
}

void FlowCache::hot_insert(const CacheKey& key, const CacheEntry& entry) const {
  const std::lock_guard<std::mutex> lock(hot_mu_);
  if (hot_max_bytes_ == 0) return;
  const std::size_t bytes = hot_entry_size(key.text, entry);
  if (bytes > hot_max_bytes_) return;  // would evict everything and still not fit
  if (const auto it = hot_index_.find(key.hash); it != hot_index_.end()) {
    // Re-admit under the same hash (refresh, or a collision's last-writer-
    // wins, mirroring the on-disk entry file): replace in place at MRU.
    hot_bytes_now_ -= std::min(hot_bytes_now_, it->second->bytes);
    hot_lru_.erase(it->second);
    hot_index_.erase(it);
  }
  hot_lru_.push_front(HotEntry{key.hash, key.text, entry, bytes,
                               entry.flow_wall_seconds, ++hot_tick_});
  hot_index_[key.hash] = hot_lru_.begin();
  hot_bytes_now_ += bytes;
  hot_evict_locked();
}

std::string FlowCache::entry_path(const CacheKey& key) const {
  return dir_ + "/" + hex64(key.hash) + ".tsce";
}

std::string FlowCache::near_index_path(std::uint64_t sketch) const {
  return dir_ + "/near_" + hex64(sketch) + ".tsni";
}

bool FlowCache::storable(const FlowResult& result) {
  return result.status == Status::kOk && !result.timed_out && result.artifacts.valid &&
         result.artifacts.labels.feasible && !result.probes.empty();
}

CacheEntry FlowCache::entry_from_result(const FlowResult& result, const Circuit& input) {
  CacheEntry entry;
  entry.winner = result.engine;  // empty for standalone flows
  entry.phi = result.artifacts.phi;
  entry.mode = result.artifacts.mode;
  entry.max_po_label = result.artifacts.labels.max_po_label;
  // Schema v2: labels are persisted in canonical order so they survive
  // parses that assigned different input ids and can be matched by name
  // during near-miss transfers.
  const std::vector<NodeId> order = canonical_node_order(input);
  const std::vector<int>& by_id = result.artifacts.labels.labels;
  if (by_id.size() == order.size()) {
    entry.winning_labels.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      entry.winning_labels[i] = by_id[static_cast<std::size_t>(order[i])];
    }
  }
  const std::uint64_t canon_hash = hash_labels(std::span<const int>(entry.winning_labels));
  entry.probes.reserve(result.probes.size());
  for (const ProbeRecord& rec : result.probes) {
    if (rec.seed_only) continue;  // provenance of this run, not a verdict
    CachedProbe p;
    p.engine = rec.engine;
    p.phi = rec.phi;
    p.mode = rec.mode;
    p.outcome = rec.outcome;
    p.status = rec.status;
    p.feasible = rec.feasible;
    p.label_hash = rec.label_hash;
    p.max_po_label = rec.max_po_label;
    // The winning record's hash certifies the labels as stored, i.e. in
    // canonical order; replay recomputes it over the remapped vector. The
    // engine clause keeps a losing engine's record at the same (mode, φ)
    // from masquerading as the certificate.
    if (p.engine == entry.winner && p.mode == entry.mode && p.phi == entry.phi) {
      p.label_hash = canon_hash;
    }
    entry.probes.push_back(p);
  }
  entry.luts = result.luts;
  entry.ffs = result.ffs;
  entry.mdr_num = result.exact_mdr.num();
  entry.mdr_den = result.exact_mdr.den();
  entry.period = result.period;
  entry.pipeline_stages = result.pipeline_stages;
  // Schema v5 cost: the probe wall time the ledger already recorded — the
  // compute a later hit saves, and what the cost-aware hot tier scores by.
  // Imported (replayed) records carry no wall time, so a stored re-run of a
  // hit keeps cost 0 rather than inventing one.
  double cost = 0.0;
  for (const ProbeRecord& rec : result.probes) {
    if (rec.seconds > 0.0 && std::isfinite(rec.seconds)) cost += rec.seconds;
  }
  entry.flow_wall_seconds = cost;
  entry.mapped_blif = write_blif_string(result.mapped, "mapped");
  return entry;
}

std::optional<CacheEntry> FlowCache::lookup(const CacheKey& key) const {
  // Hot tier first: a resident entry was already validated on its way in,
  // so the whole filesystem path (and its failpoint, which models the file
  // read) is skipped.
  if (std::optional<CacheEntry> hot = hot_lookup(key); hot.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return hot;
  }
  if (read_fault("cache.entry.read")) {
    // Transient read failure: degrade to a miss immediately. A miss is
    // already sound (the flow just recomputes), so the read path never
    // burns backoff sleeps the way store() does.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  bool existed = false;
  std::optional<ParsedEntry> parsed = parse_entry_file(entry_path(key), &existed);
  if (!parsed.has_value()) {
    // A file that was present but failed parse or checksum is a torn entry
    // demoted to a clean miss — counted, never served.
    if (existed) recovered_entries_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Collision check: the stored canonical key must match byte for byte.
  if (parsed->hash != key.hash || parsed->key_text != key.text) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hot_insert(key, parsed->entry);  // the next lookup skips the file entirely
  return std::move(parsed->entry);
}

std::optional<FlowCache::NearMiss> FlowCache::lookup_near(const CacheKey& key) const {
  if (read_fault("cache.sidecar.read")) return std::nullopt;
  // The index file holds the hash of the newest entry stored under this
  // sketch (last-writer-wins; a stale or corrupt pointer is just no donor).
  std::ifstream in(near_index_path(key.near_sketch), std::ios::binary);
  if (!in) return std::nullopt;
  std::string content;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  content = buffer.str();
  EntryReader r(std::move(content));
  r.expect("turbosyn-near");
  const bool header_ok = r.ok() && r.integer() == 1;
  const std::uint64_t donor_hash = header_ok ? r.hex() : 0;
  if (!header_ok || !r.ok()) {
    // Truncated or garbage sidecar: no donor, and never a poisoned import —
    // the warm seed is only ever derived from a fully validated entry.
    recovered_sidecars_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // The donor being this exact key means lookup() already tried (and
  // rejected) the entry; there is nothing more to transfer from.
  if (donor_hash == key.hash) return std::nullopt;

  bool donor_existed = false;
  std::optional<ParsedEntry> parsed =
      parse_entry_file(dir_ + "/" + hex64(donor_hash) + ".tsce", &donor_existed);
  if (!parsed.has_value()) {
    if (donor_existed) recovered_entries_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (parsed->hash != donor_hash) return std::nullopt;
  // Donor and requester must agree on the options line (flow kind and every
  // result-relevant option) — only the circuit itself may differ. The sketch
  // hash suggests this, the byte comparison proves it.
  const std::size_t donor_nl = parsed->key_text.find('\n');
  const std::size_t key_nl = key.text.find('\n');
  if (donor_nl == std::string::npos || key_nl == std::string::npos ||
      parsed->key_text.compare(0, donor_nl + 1, key.text, 0, key_nl + 1) != 0) {
    return std::nullopt;
  }

  NearMiss near;
  near.entry = std::move(parsed->entry);
  near.canonical_text = parsed->key_text.substr(donor_nl + 1);
  near_hits_.fetch_add(1, std::memory_order_relaxed);
  return near;
}

bool FlowCache::store_result(const CacheKey& key, const FlowResult& result,
                             const Circuit& input) {
  if (!storable(result)) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return store(key, entry_from_result(result, input));
}

bool FlowCache::store(const CacheKey& key, const CacheEntry& entry) {
  if (entry.winning_labels.empty() || entry.probes.empty()) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::ostringstream os;
  os << "turbosyn-cache " << kSchemaVersion << '\n';
  os << "hash " << hex64(key.hash) << '\n';
  os << "key " << key.text.size() << '\n' << key.text << '\n';
  os << "status ok\n";
  os << "winner " << engine_token(entry.winner) << '\n';
  os << "phi " << entry.phi << " mode " << static_cast<int>(entry.mode) << " maxpo "
     << entry.max_po_label << '\n';
  os << "result " << entry.luts << ' ' << entry.ffs << ' ' << entry.mdr_num << ' '
     << entry.mdr_den << ' ' << entry.period << ' ' << entry.pipeline_stages << '\n';
  os << "cost " << real_token(entry.flow_wall_seconds) << '\n';
  os << "probes " << entry.probes.size() << '\n';
  for (const CachedProbe& p : entry.probes) {
    os << "p " << engine_token(p.engine) << ' ' << static_cast<int>(p.mode) << ' '
       << p.phi << ' ' << static_cast<int>(p.outcome) << ' ' << static_cast<int>(p.status)
       << ' ' << (p.feasible ? 1 : 0) << ' ' << hex64(p.label_hash) << ' '
       << p.max_po_label << '\n';
  }
  os << "labels " << entry.winning_labels.size() << '\n';
  for (std::size_t i = 0; i < entry.winning_labels.size(); ++i) {
    os << entry.winning_labels[i] << (i + 1 == entry.winning_labels.size() ? '\n' : ' ');
  }
  os << "blif " << entry.mapped_blif.size() << '\n' << entry.mapped_blif << '\n';
  os << "end\n";

  // Schema v3 trailer: length + FNV-1a checksum over the whole payload, so a
  // torn write that still renamed is detected on read instead of served.
  const std::string payload = os.str();
  const std::string data = payload + "sum " + std::to_string(payload.size()) + ' ' +
                           hex64(fnv1a64(payload)) + '\n';

  // Unique tmp name per writer, then an atomic rename: concurrent stores of
  // the same key are last-writer-wins with no torn intermediate state. A
  // transient write/rename failure (ENOSPC blips, AV/backup scanners holding
  // the file, injected cache.entry.{write,rename} faults) is retried with a
  // short deterministic backoff — unlike reads, a lost store costs a full
  // recompute on every later run, so a couple of millisecond sleeps pay off.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string final_path = entry_path(key);

  const auto attempt_store = [&]() -> bool {
    std::string_view body = data;
    try {
      if (failpoint::enabled()) {
        const failpoint::Hit w = failpoint::check("cache.entry.write");
        if (w.action == failpoint::Action::kError) return false;
        if (w.action == failpoint::Action::kPartialWrite) {
          // Simulate a torn write that still completes the rename: exactly
          // the state an fsync-less crash can leave behind.
          body = body.substr(0, std::min<std::size_t>(
                                    body.size(),
                                    w.arg < 0 ? 0 : static_cast<std::size_t>(w.arg)));
        }
      }
    } catch (...) {
      return false;  // a kThrow policy fails the attempt, never the caller
    }
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
    std::error_code attempt_ec;
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out.write(body.data(), static_cast<std::streamsize>(body.size()));
      out.flush();
      if (!out.good()) {
        out.close();
        std::filesystem::remove(tmp_path, attempt_ec);
        return false;
      }
    }
    try {
      if (failpoint::enabled() &&
          failpoint::check("cache.entry.rename").action == failpoint::Action::kError) {
        std::filesystem::remove(tmp_path, attempt_ec);
        return false;
      }
    } catch (...) {
      std::filesystem::remove(tmp_path, attempt_ec);
      return false;
    }
    std::filesystem::rename(tmp_path, final_path, attempt_ec);
    if (attempt_ec) {
      std::filesystem::remove(tmp_path, attempt_ec);
      return false;
    }
    return true;
  };

  constexpr int kMaxAttempts = 3;
  constexpr std::chrono::milliseconds kBackoff[] = {std::chrono::milliseconds(1),
                                                    std::chrono::milliseconds(4)};
  bool written = false;
  for (int attempt = 0; attempt < kMaxAttempts && !written; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kBackoff[attempt - 1]);
    }
    written = attempt_store();
  }
  if (!written) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  // Write-through admission: the entry just certified storable is exactly
  // what a repeat request will ask for.
  hot_insert(key, entry);

  // Near-miss index: point this key's sketch at the entry just written.
  // Best-effort and last-writer-wins — a lost or stale pointer only costs a
  // warm start, never correctness (lookup_near re-validates the entry) — so
  // unlike the entry itself it is not worth a retry.
  if (key.near_sketch != 0) {
    try {
      if (failpoint::enabled() &&
          failpoint::check("cache.sidecar.write").action == failpoint::Action::kError) {
        return true;  // injected sidecar fault: entry stored, index skipped
      }
    } catch (...) {
      return true;
    }
    const std::string index_path = near_index_path(key.near_sketch);
    const std::string index_tmp =
        index_path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
    std::ofstream out(index_tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      out << "turbosyn-near 1\n" << hex64(key.hash) << '\n';
      out.flush();
      const bool good = out.good();
      out.close();
      if (good) std::filesystem::rename(index_tmp, index_path, ec);
      if (!good || ec) std::filesystem::remove(index_tmp, ec);
    }
  }
  return true;
}

FlowCache::RecoveryStats FlowCache::recover() {
  RecoveryStats stats;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return stats;  // no directory yet: nothing to recover

  // One scan, three buckets. Tmp files go first, then torn entries, then
  // sidecars — so a sidecar pointing at an entry GC'd this very pass is seen
  // as dangling and removed with it.
  std::vector<std::filesystem::path> tmps;
  std::vector<std::filesystem::path> entries;
  std::vector<std::filesystem::path> sidecars;
  for (const auto& de : it) {
    if (!de.is_regular_file(ec)) continue;
    const std::string name = de.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      tmps.push_back(de.path());
    } else if (name.ends_with(".tsce")) {
      entries.push_back(de.path());
    } else if (name.rfind("near_", 0) == 0 && name.ends_with(".tsni")) {
      sidecars.push_back(de.path());
    }
  }

  for (const auto& path : tmps) {
    // A stray tmp is a writer that died between write and rename; the rename
    // never happened, so no reader can be depending on it.
    if (std::filesystem::remove(path, ec) && !ec) {
      ++stats.stray_tmp;
      recovered_tmp_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (const auto& path : entries) {
    bool existed = false;
    const std::optional<ParsedEntry> parsed = parse_entry_file(path.string(), &existed);
    // Unparseable, checksum-failing, or filed under the wrong name (a stale
    // rename): lookup would demote it on every read; delete it once here.
    const bool healthy =
        parsed.has_value() && path.filename().string() == hex64(parsed->hash) + ".tsce";
    if (!existed || healthy) continue;
    if (std::filesystem::remove(path, ec) && !ec) {
      ++stats.torn_entries;
      recovered_entries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (const auto& path : sidecars) {
    bool dangling = false;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EntryReader r(buffer.str());
    r.expect("turbosyn-near");
    if (!r.ok() || r.integer() != 1) {
      dangling = true;
    } else {
      const std::uint64_t donor_hash = r.hex();
      dangling = !r.ok() ||
                 !std::filesystem::is_regular_file(
                     dir_ + "/" + hex64(donor_hash) + ".tsce", ec);
    }
    if (!dangling) continue;
    if (std::filesystem::remove(path, ec) && !ec) {
      ++stats.dangling_sidecars;
      recovered_sidecars_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return stats;
}

}  // namespace turbosyn
