#include "graph/digraph.hpp"

#include "base/check.hpp"

namespace turbosyn {

NodeId Digraph::add_node() {
  fanins_.emplace_back();
  fanouts_.emplace_back();
  return static_cast<NodeId>(fanins_.size() - 1);
}

NodeId Digraph::add_nodes(int count) {
  TS_CHECK(count >= 0, "cannot add a negative number of nodes");
  const NodeId first = static_cast<NodeId>(fanins_.size());
  fanins_.resize(fanins_.size() + static_cast<std::size_t>(count));
  fanouts_.resize(fanouts_.size() + static_cast<std::size_t>(count));
  return first;
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, std::int64_t weight) {
  TS_CHECK(from >= 0 && from < num_nodes(), "edge source " << from << " out of range");
  TS_CHECK(to >= 0 && to < num_nodes(), "edge target " << to << " out of range");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, weight});
  fanouts_[static_cast<std::size_t>(from)].push_back(e);
  fanins_[static_cast<std::size_t>(to)].push_back(e);
  return e;
}

}  // namespace turbosyn
