#pragma once
// Strongly connected components (iterative Tarjan).
//
// The TurboMap/TurboSYN label computation processes SCCs in topological
// order (Theorem 2 of the paper relies on it), so the decomposition also
// reports components in a topological order of the condensation.

#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace turbosyn {

struct SccDecomposition {
  /// component_of[v] = index of v's SCC.
  std::vector<int> component_of;
  /// components[i] = nodes of SCC i; component indices are topologically
  /// ordered: every edge u->v with distinct components goes from a lower
  /// index to a higher index.
  std::vector<std::vector<NodeId>> components;
};

/// Decomposes the graph; edges for which skip_edge returns true are ignored
/// (used e.g. to break at registered edges). Pass nullptr to keep all edges.
SccDecomposition strongly_connected_components(
    const Digraph& g, const std::function<bool(EdgeId)>& skip_edge = nullptr);

/// Topological order of a DAG (throws turbosyn::Error on a cycle). Edges for
/// which skip_edge returns true are ignored; with a skip predicate the
/// remaining graph must be acyclic.
std::vector<NodeId> topological_order(const Digraph& g,
                                      const std::function<bool(EdgeId)>& skip_edge = nullptr);

}  // namespace turbosyn
