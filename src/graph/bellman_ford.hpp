#pragma once
// Longest-path relaxation with positive-cycle extraction (Bellman–Ford).
//
// Used by the maximum cycle-ratio computation: for a candidate ratio p/q the
// integer edge cost q*d(v) - p*w(e) admits a positive cycle iff some loop has
// delay-to-register ratio strictly greater than p/q.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace turbosyn {

struct PositiveCycle {
  bool found = false;
  /// Edges of one positive cycle, in traversal order (empty if !found).
  std::vector<EdgeId> edges;
};

/// Finds a cycle whose total cost (sum of cost(e) over edges) is > 0, if any.
/// Every node acts as a source (distances start at 0), so cycles anywhere in
/// the graph are detected.
PositiveCycle find_positive_cycle(const Digraph& g,
                                  const std::function<std::int64_t(EdgeId)>& cost);

}  // namespace turbosyn
