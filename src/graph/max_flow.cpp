#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>

#include "base/check.hpp"

namespace turbosyn {

MaxFlow::MaxFlow(int num_nodes) : head_(static_cast<std::size_t>(num_nodes), -1) {
  TS_CHECK(num_nodes >= 0, "negative node count");
}

int MaxFlow::add_node() {
  head_.push_back(-1);
  return static_cast<int>(head_.size() - 1);
}

int MaxFlow::add_arc(int from, int to, std::int64_t capacity) {
  TS_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
           "arc endpoint out of range");
  TS_CHECK(capacity >= 0, "negative arc capacity");
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, head_[static_cast<std::size_t>(from)], capacity});
  head_[static_cast<std::size_t>(from)] = id;
  arcs_.push_back(Arc{from, head_[static_cast<std::size_t>(to)], 0});
  head_[static_cast<std::size_t>(to)] = id + 1;
  return id;
}

bool MaxFlow::build_levels(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::deque<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (int a = head_[static_cast<std::size_t>(v)]; a != -1; a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > 0 && level_[static_cast<std::size_t>(arc.to)] == -1) {
        level_[static_cast<std::size_t>(arc.to)] = level_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] != -1;
}

std::int64_t MaxFlow::push(int v, int sink, std::int64_t budget) {
  if (v == sink) return budget;
  for (int& a = iter_[static_cast<std::size_t>(v)]; a != -1; a = arcs_[static_cast<std::size_t>(a)].next) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    if (arc.cap <= 0 || level_[static_cast<std::size_t>(arc.to)] != level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const std::int64_t sent = push(arc.to, sink, std::min(budget, arc.cap));
    if (sent > 0) {
      arc.cap -= sent;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += sent;
      return sent;
    }
  }
  return 0;
}

std::int64_t MaxFlow::compute(int source, int sink, std::int64_t limit,
                              std::int64_t augment_budget) {
  TS_CHECK(source != sink, "source and sink must differ");
  TS_CHECK(source_ == -1, "compute() may only be called once");
  source_ = source;
  sink_ = sink;
  std::int64_t flow = 0;
  augments_ = 0;
  while (build_levels(source, sink)) {
    iter_ = head_;
    while (std::int64_t sent = push(source, sink, kInfinity)) {
      flow += sent;
      ++augments_;
      if (flow > limit) return flow;
      if (augment_budget > 0 && augments_ >= augment_budget) {
        // Give up: report "exceeds the limit" so the caller sees no cut. The
        // verdict is conservative, not proven — see augment_budget_hit().
        augment_budget_hit_ = true;
        return limit + 1;
      }
    }
  }
  return flow;
}

void MaxFlow::reset() {
  arcs_.clear();
  head_.clear();
  level_.clear();
  iter_.clear();
  source_ = -1;
  sink_ = -1;
  augments_ = 0;
  augment_budget_hit_ = false;
}

std::vector<bool> MaxFlow::min_cut_source_side() const {
  std::vector<bool> side;
  min_cut_source_side(side);
  return side;
}

void MaxFlow::min_cut_source_side(std::vector<bool>& side) const {
  TS_CHECK(source_ != -1, "min_cut_source_side requires a prior compute()");
  side.assign(head_.size(), false);
  std::deque<int> queue;
  side[static_cast<std::size_t>(source_)] = true;
  queue.push_back(source_);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (int a = head_[static_cast<std::size_t>(v)]; a != -1; a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > 0 && !side[static_cast<std::size_t>(arc.to)]) {
        side[static_cast<std::size_t>(arc.to)] = true;
        queue.push_back(arc.to);
      }
    }
  }
}

}  // namespace turbosyn
