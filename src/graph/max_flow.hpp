#pragma once
// Dinic max-flow on a residual arc list.
//
// The K-feasible cut tests of FlowMap/TurboMap/TurboSYN reduce to "is the
// max-flow through a node-split network at most K?", so compute() accepts a
// limit and stops as soon as the flow exceeds it. After compute(), the
// source side of a minimum cut is available.

#include <cstdint>
#include <limits>
#include <vector>

namespace turbosyn {

class MaxFlow {
 public:
  static constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max() / 4;

  explicit MaxFlow(int num_nodes = 0);

  int add_node();
  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Adds a directed arc with the given capacity (and a 0-capacity reverse
  /// residual arc). Returns the arc index (reverse is index+1).
  int add_arc(int from, int to, std::int64_t capacity);

  /// Runs Dinic from source to sink. Stops early (returning a value > limit)
  /// once the flow strictly exceeds `limit`; pass kInfinity for an exact
  /// max-flow. Can be called once per instance (or once per reset()).
  /// `augment_budget` (0 = unlimited) bounds the number of augmenting paths;
  /// when it fires, compute() gives up and returns limit + 1 — callers see a
  /// conservative "flow exceeds the limit" (no cut) and augment_budget_hit()
  /// reports that the verdict was budget-imposed rather than proven.
  std::int64_t compute(int source, int sink, std::int64_t limit = kInfinity,
                       std::int64_t augment_budget = 0);

  /// True iff the last compute() was cut short by its augmentation budget.
  bool augment_budget_hit() const { return augment_budget_hit_; }

  /// Number of augmenting paths found by the last compute() (counted whether
  /// or not a budget was in force) — the natural work metric for cut tests.
  std::int64_t last_augmentations() const { return augments_; }

  /// Clears the network (nodes, arcs, flow state) but keeps every buffer's
  /// capacity, so a reused instance reaches a zero-allocation steady state.
  void reset();

  /// After compute() terminated below its limit: nodes reachable from the
  /// source in the residual graph (the source side of a minimum cut).
  std::vector<bool> min_cut_source_side() const;
  /// Same, writing into a caller-owned buffer (resized to num_nodes()) so hot
  /// loops can reuse its storage.
  void min_cut_source_side(std::vector<bool>& side) const;

 private:
  struct Arc {
    int to;
    int next;  // next arc out of the same node, -1 terminates
    std::int64_t cap;
  };

  bool build_levels(int source, int sink);
  std::int64_t push(int v, int sink, std::int64_t budget);

  std::vector<Arc> arcs_;
  std::vector<int> head_;     // first arc of each node
  std::vector<int> level_;
  std::vector<int> iter_;     // current-arc optimization
  int source_ = -1;
  int sink_ = -1;
  std::int64_t augments_ = 0;
  bool augment_budget_hit_ = false;
};

}  // namespace turbosyn
