#include "graph/bellman_ford.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace turbosyn {

PositiveCycle find_positive_cycle(const Digraph& g,
                                  const std::function<std::int64_t(EdgeId)>& cost) {
  const int n = g.num_nodes();
  PositiveCycle result;
  if (n == 0) return result;

  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  std::vector<EdgeId> parent_edge(static_cast<std::size_t>(n), kNoEdge);

  NodeId touched = kNoNode;
  for (int round = 0; round < n; ++round) {
    touched = kNoNode;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      const std::int64_t cand = dist[static_cast<std::size_t>(edge.from)] + cost(e);
      if (cand > dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = cand;
        parent_edge[static_cast<std::size_t>(edge.to)] = e;
        touched = edge.to;
      }
    }
    if (touched == kNoNode) return result;  // converged: no positive cycle
  }

  // Still relaxing after n rounds: walk n parent steps from the last updated
  // node to guarantee landing on the cycle, then collect it.
  NodeId v = touched;
  for (int i = 0; i < n; ++i) {
    const EdgeId pe = parent_edge[static_cast<std::size_t>(v)];
    TS_ASSERT(pe != kNoEdge);
    v = g.edge(pe).from;
  }
  const NodeId start = v;
  result.found = true;
  do {
    const EdgeId pe = parent_edge[static_cast<std::size_t>(v)];
    TS_ASSERT(pe != kNoEdge);
    result.edges.push_back(pe);
    v = g.edge(pe).from;
  } while (v != start);
  std::reverse(result.edges.begin(), result.edges.end());
  return result;
}

}  // namespace turbosyn
