#pragma once
// A plain directed multigraph with integer edge weights.
//
// This is the shared substrate for the retiming-graph algorithms: the
// netlist layer exports its connectivity as a Digraph (edge weight = number
// of flip-flops on the connection) and the retiming / cycle-ratio / label
// machinery operates on it uniformly.

#include <cstdint>
#include <span>
#include <vector>

namespace turbosyn {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

class Digraph {
 public:
  struct Edge {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::int64_t weight = 0;
  };

  NodeId add_node();
  /// Adds count nodes and returns the id of the first.
  NodeId add_nodes(int count);
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t weight = 0);

  int num_nodes() const { return static_cast<int>(fanins_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  std::int64_t weight(EdgeId e) const { return edge(e).weight; }
  void set_weight(EdgeId e, std::int64_t w) { edges_[static_cast<std::size_t>(e)].weight = w; }

  /// Edge ids entering / leaving a node, in insertion order.
  std::span<const EdgeId> fanin_edges(NodeId v) const { return fanins_[static_cast<std::size_t>(v)]; }
  std::span<const EdgeId> fanout_edges(NodeId v) const { return fanouts_[static_cast<std::size_t>(v)]; }

  int fanin_count(NodeId v) const { return static_cast<int>(fanins_[static_cast<std::size_t>(v)].size()); }
  int fanout_count(NodeId v) const { return static_cast<int>(fanouts_[static_cast<std::size_t>(v)].size()); }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> fanins_;
  std::vector<std::vector<EdgeId>> fanouts_;
};

}  // namespace turbosyn
