#include "graph/scc.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace turbosyn {

SccDecomposition strongly_connected_components(const Digraph& g,
                                               const std::function<bool(EdgeId)>& skip_edge) {
  const int n = g.num_nodes();
  SccDecomposition result;
  result.component_of.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<NodeId> stack;
  int next_index = 0;

  // Iterative Tarjan: each frame remembers the node and the position within
  // its fanout list.
  struct Frame {
    NodeId v;
    std::size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto outs = g.fanout_edges(f.v);
      bool descended = false;
      while (f.edge_pos < outs.size()) {
        const EdgeId e = outs[f.edge_pos++];
        if (skip_edge && skip_edge(e)) continue;
        const NodeId w = g.edge(e).to;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.v)] =
              std::min(lowlink[static_cast<std::size_t>(f.v)], index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;

      // f.v is fully explored.
      const NodeId v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        const NodeId parent = frames.back().v;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)], lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        std::vector<NodeId> comp;
        while (true) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        result.components.push_back(std::move(comp));
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order; flip to topological.
  std::reverse(result.components.begin(), result.components.end());
  for (std::size_t c = 0; c < result.components.size(); ++c) {
    for (const NodeId v : result.components[c]) {
      result.component_of[static_cast<std::size_t>(v)] = static_cast<int>(c);
    }
  }
  return result;
}

std::vector<NodeId> topological_order(const Digraph& g,
                                      const std::function<bool(EdgeId)>& skip_edge) {
  const int n = g.num_nodes();
  std::vector<int> pending(static_cast<std::size_t>(n), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (skip_edge && skip_edge(e)) continue;
    ++pending[static_cast<std::size_t>(g.edge(e).to)];
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const EdgeId e : g.fanout_edges(v)) {
      if (skip_edge && skip_edge(e)) continue;
      if (--pending[static_cast<std::size_t>(g.edge(e).to)] == 0) ready.push_back(g.edge(e).to);
    }
  }
  TS_CHECK(static_cast<int>(order.size()) == n,
           "topological_order called on a graph with a (non-skipped) cycle");
  return order;
}

}  // namespace turbosyn
