#include "workloads/samples.hpp"

#include "base/check.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {

std::string counter3_blif() {
  // q(t+1) = q(t) + en, a 3-bit ripple-carry counter.
  return R"(.model counter3
.inputs en
.outputs q0 q1 q2
.latch n0 q0 0
.latch n1 q1 0
.latch n2 q2 0
# n0 = q0 XOR en
.names en q0 n0
01 1
10 1
# n1 = q1 XOR (en AND q0)
.names en q0 q1 n1
110 1
001 1
011 1
101 1
# n2 = q2 XOR (en AND q0 AND q1)
.names en q0 q1 q2 n2
1110 1
0001 1
1001 1
0101 1
1101 1
0011 1
1011 1
0111 1
.end
)";
}

std::string pattern_fsm_blif() {
  // Mealy detector for the serial pattern 1011 (overlapping), states encoded
  // as (s1 s0): S0=00, S1=01, S2=10, S3=11.
  return R"(.model pattern1011
.inputs x
.outputs z
.latch ns0 s0 0
.latch ns1 s1 0
# ns0 = x (S1 or S3 is entered exactly on a 1)
.names x ns0
1 1
# ns1 = (S1 and !x) or (S2 and x) or (S3 and !x)
.names x s0 s1 ns1
010 1
101 1
011 1
# z = S3 and x
.names x s0 s1 z
111 1
.end
)";
}

Circuit figure1_circuit() {
  // Registered loop g2 ->(1 FF)-> g1 -> g2 computing
  //   g1 = s XOR (a AND b),  g2 = g1 XOR (c AND d),  s = g2 delayed by 1.
  // At K=3 the loop function s^(a&b)^(c&d) spans 5 inputs, so plain mapping
  // needs two LUTs on the loop (MDR ratio 2); Roth–Karp decomposition pulls
  // (a AND b) and (c AND d) into encoder LUTs off the loop, reaching ratio 1.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d0 = c.add_pi("c");
  const NodeId d1 = c.add_pi("d");
  const NodeId g1 = c.declare_gate("g1");
  const NodeId g2 = c.declare_gate("g2");
  // f(s, x, y) = s XOR (x AND y) over variable order (s, x, y).
  TruthTable xor_and = TruthTable::var(3, 0) ^ (TruthTable::var(3, 1) & TruthTable::var(3, 2));
  {
    const Circuit::FaninSpec fanins[3] = {{g2, 1}, {a, 0}, {b, 0}};
    c.finish_gate(g1, xor_and, fanins);
  }
  {
    const Circuit::FaninSpec fanins[3] = {{g1, 0}, {d0, 0}, {d1, 0}};
    c.finish_gate(g2, xor_and, fanins);
  }
  c.add_po("$po:out", {g2, 0});
  c.validate();
  return c;
}

Circuit ring_circuit(int stages, int registers) {
  TS_CHECK(stages >= 1 && registers >= 1, "ring needs at least one stage and one register");
  Circuit c;
  const NodeId en = c.add_pi("en");
  std::vector<NodeId> ring;
  for (int i = 0; i < stages; ++i) ring.push_back(c.declare_gate("r" + std::to_string(i)));
  for (int i = 0; i < stages; ++i) {
    const NodeId prev = ring[static_cast<std::size_t>((i + stages - 1) % stages)];
    // Spread the registers evenly: edge i gets
    // floor((i+1)*R/S) - floor(i*R/S), which sums to R around the loop.
    const int w = static_cast<int>((static_cast<std::int64_t>(i + 1) * registers) / stages -
                                   (static_cast<std::int64_t>(i) * registers) / stages);
    const Circuit::FaninSpec fanins[2] = {{prev, w}, {en, 0}};
    c.finish_gate(ring[static_cast<std::size_t>(i)], tt_xor(2), fanins);
  }
  c.add_po("$po:q", {ring[0], 0});
  c.validate();
  return c;
}

Circuit lfsr_circuit(int bits, std::span<const int> taps) {
  TS_CHECK(bits >= 2, "LFSR needs at least two bits");
  std::vector<bool> is_tap(static_cast<std::size_t>(bits), false);
  for (const int t : taps) {
    TS_CHECK(t >= 1 && t < bits, "tap position out of range");
    is_tap[static_cast<std::size_t>(t)] = true;
  }
  Circuit c;
  const NodeId in = c.add_pi("in");
  // g_i computes the next value of bit i; the registered signal (g_i, 1) is
  // the bit itself.
  std::vector<NodeId> g;
  for (int i = 0; i < bits; ++i) g.push_back(c.declare_gate("b" + std::to_string(i)));
  const NodeId msb = g[static_cast<std::size_t>(bits - 1)];
  {
    // b0' = in XOR msb (feedback entry point).
    const Circuit::FaninSpec f[2] = {{in, 0}, {msb, 1}};
    c.finish_gate(g[0], tt_xor(2), f);
  }
  for (int i = 1; i < bits; ++i) {
    if (is_tap[static_cast<std::size_t>(i)]) {
      const Circuit::FaninSpec f[2] = {{g[static_cast<std::size_t>(i - 1)], 1}, {msb, 1}};
      c.finish_gate(g[static_cast<std::size_t>(i)], tt_xor(2), f);
    } else {
      const Circuit::FaninSpec f[1] = {{g[static_cast<std::size_t>(i - 1)], 1}};
      c.finish_gate(g[static_cast<std::size_t>(i)], tt_buf(), f);
    }
  }
  c.add_po("$po:out", {msb, 1});
  c.validate();
  return c;
}

std::string traffic_light_blif() {
  // Moore controller: 4 states (NS-green, NS-yellow, EW-green, EW-yellow)
  // advancing when the 1-bit dwell timer is set and `en` is high.
  return R"(.model traffic
.inputs en
.outputs ns_go ew_go
.latch nt0 t0 0
.latch ns0 s0 0
.latch ns1 s1 0
# timer toggles while enabled
.names en t0 nt0
10 1
01 1
# advance = en AND t0
.names en t0 adv
11 1
# state counter: (s1 s0) + adv
.names s0 adv ns0
10 1
01 1
.names s1 s0 adv ns1
100 1
101 1
110 1
011 1
# Moore outputs
.names s1 s0 ns_go
00 1
.names s1 s0 ew_go
10 1
.end
)";
}

std::string gray_counter_blif() {
  // Binary counter internally; outputs are the Gray encoding q ^ (q >> 1).
  return R"(.model gray4
.inputs en
.outputs g0 g1 g2 g3
.latch n0 q0 0
.latch n1 q1 0
.latch n2 q2 0
.latch n3 q3 0
.names en q0 n0
01 1
10 1
.names en q0 q1 n1
110 1
0-1 1
-01 1
.names en q0 q1 q2 n2
1110 1
0--1 1
-0-1 1
--01 1
.names en q0 q1 q2 q3 n3
11110 1
0---1 1
-0--1 1
--0-1 1
---01 1
.names q0 q1 g0
10 1
01 1
.names q1 q2 g1
10 1
01 1
.names q2 q3 g2
10 1
01 1
.names q3 g3
1 1
.end
)";
}

}  // namespace turbosyn
