#pragma once
// Synthetic sequential benchmark generator.
//
// The paper evaluates on 12 MCNC FSM benchmarks and 4 ISCAS'89 circuits
// processed through SIS + dmig. Those netlists are not redistributable here,
// so this generator produces deterministic stand-ins with the same circuit
// names and comparable gate/FF counts (see DESIGN.md §4): layered random
// logic clouds over the PIs and registered feedback signals, K-bounded by
// construction, with every zero-weight edge pointing forward (no
// combinational loops) and all loops closed through registered feedback
// edges — the structural regime that drives label computation, cut width
// and decomposability.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace turbosyn {

struct BenchmarkSpec {
  std::string name;
  std::uint64_t seed = 1;
  int num_pis = 8;
  int num_pos = 8;
  int num_gates = 200;
  /// Probability that a fanin is a registered feedback edge; calibrates the
  /// FF count (expected FFs ~ feedback * total fanins).
  double feedback = 0.05;
  int max_fanin = 4;           // gates use 2..max_fanin inputs
  int locality = 24;           // combinational fanins come from this window
  double exotic_gate_ratio = 0.3;  // fraction of gates with random truth tables
};

/// Deterministically generates the circuit for a spec (same spec => same
/// circuit on every platform).
Circuit generate_fsm_circuit(const BenchmarkSpec& spec);

/// The 16-circuit suite standing in for the paper's Table 1 benchmarks
/// (12 MCNC FSM + 4 ISCAS'89 names).
std::vector<BenchmarkSpec> table1_suite();

/// Smaller specs for fast unit/property tests.
std::vector<BenchmarkSpec> tiny_suite();

/// Scaled specs for the paper's ">10^4 gates in reasonable time" claim.
std::vector<BenchmarkSpec> scaling_suite();

}  // namespace turbosyn
