#pragma once
// Fixed-width text tables for the benchmark binaries (the Table 1 /
// experiment reports).

#include <iosfwd>
#include <string>
#include <vector>

namespace turbosyn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with column-aligned cells, a header rule, and right-aligned
  /// numeric-looking cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (for ratio columns).
std::string format_double(double value, int precision = 2);

}  // namespace turbosyn
