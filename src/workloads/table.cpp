#include "workloads/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/check.hpp"

namespace turbosyn {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789.+-/ex") == std::string::npos;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  TS_CHECK(cells.size() == headers_.size(),
           "row has " << cells.size() << " cells, table has " << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << "  ";
      if (looks_numeric(row[i]) && i > 0) {
        os << std::setw(static_cast<int>(width[i])) << std::right << row[i];
      } else {
        os << std::setw(static_cast<int>(width[i])) << std::left << row[i];
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace turbosyn
