#include "workloads/generator.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

/// A random truth table that depends on every one of its inputs.
TruthTable random_dependent_tt(Rng& rng, int arity) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    TruthTable t = TruthTable::constant(arity, false);
    for (std::uint32_t i = 0; i < t.num_bits(); ++i) {
      if (rng.next_bool()) t.set_bit(i, true);
    }
    bool full_support = true;
    for (int v = 0; v < arity && full_support; ++v) full_support = t.depends_on(v);
    if (full_support) return t;
  }
  // Overwhelmingly unlikely for arity >= 2; fall back to XOR (full support).
  return tt_xor(arity);
}

TruthTable standard_tt(Rng& rng, int arity) {
  switch (rng.next_below(arity == 3 ? 6 : 5)) {
    case 0: return tt_and(arity);
    case 1: return tt_or(arity);
    case 2: return tt_nand(arity);
    case 3: return tt_nor(arity);
    case 4: return tt_xor(arity);
    default: return tt_mux();
  }
}

}  // namespace

Circuit generate_fsm_circuit(const BenchmarkSpec& spec) {
  TS_CHECK(spec.num_pis >= 1 && spec.num_gates >= 1 && spec.num_pos >= 1,
           "benchmark spec needs at least one PI, gate and PO");
  TS_CHECK(spec.max_fanin >= 2 && spec.max_fanin <= 6, "max_fanin must be in [2, 6]");
  Rng rng(spec.seed);
  Circuit c;

  std::vector<NodeId> pis;
  for (int i = 0; i < spec.num_pis; ++i) pis.push_back(c.add_pi(spec.name + "_pi" + std::to_string(i)));

  std::vector<NodeId> gates;
  for (int i = 0; i < spec.num_gates; ++i) {
    gates.push_back(c.declare_gate(spec.name + "_g" + std::to_string(i)));
  }

  for (int i = 0; i < spec.num_gates; ++i) {
    const int arity = static_cast<int>(rng.next_in(2, spec.max_fanin));
    const TruthTable func = rng.next_double() < spec.exotic_gate_ratio
                                ? random_dependent_tt(rng, arity)
                                : standard_tt(rng, arity);
    std::vector<Circuit::FaninSpec> fanins;
    for (int f = 0; f < func.num_vars(); ++f) {
      if (rng.next_double() < spec.feedback) {
        // Registered feedback from a bounded window downstream: the loop it
        // closes runs back up through the local combinational window, so its
        // delay-to-register ratio stays in the few-LUT-levels regime the
        // paper's benchmarks exhibit (rather than spanning the whole array).
        const int span = 3 * spec.locality;
        const int hi = std::min(spec.num_gates - 1, i + span);
        const NodeId src = gates[static_cast<std::size_t>(rng.next_in(i, hi))];
        const int w = rng.next_bool(0.85) ? 1 : 2;
        fanins.push_back({src, w});
        continue;
      }
      // Combinational fanin: earlier gate from a local window, or a PI.
      const int window_lo = std::max(0, i - spec.locality);
      if (i > window_lo && rng.next_bool(0.8)) {
        const NodeId src =
            gates[static_cast<std::size_t>(rng.next_in(window_lo, i - 1))];
        fanins.push_back({src, 0});
      } else {
        fanins.push_back({pis[rng.next_below(pis.size())], 0});
      }
    }
    c.finish_gate(gates[static_cast<std::size_t>(i)], func, fanins);
  }

  for (int i = 0; i < spec.num_pos; ++i) {
    // Observe late gates (they transitively cover most of the circuit).
    const int lo = std::max(0, spec.num_gates - 4 * spec.num_pos);
    const NodeId src = gates[static_cast<std::size_t>(rng.next_in(lo, spec.num_gates - 1))];
    const int w = rng.next_bool(0.2) ? 1 : 0;
    c.add_po("$po:" + spec.name + "_po" + std::to_string(i), {src, w});
  }

  c.validate();
  return c;
}

std::vector<BenchmarkSpec> table1_suite() {
  // Names follow the paper's benchmark set; sizes are in the post-SIS,
  // post-dmig regime the paper reports (hundreds of gates, tens of FFs).
  const auto spec = [](const char* name, std::uint64_t seed, int pis, int pos, int gates,
                       double feedback, int locality, double exotic) {
    BenchmarkSpec s;
    s.name = name;
    s.seed = seed;
    s.num_pis = pis;
    s.num_pos = pos;
    s.num_gates = gates;
    s.feedback = feedback;
    s.locality = locality;
    s.exotic_gate_ratio = exotic;
    return s;
  };
  return {
      // 12 MCNC FSM stand-ins.
      spec("bbara", 101, 4, 2, 84, 0.050, 14, 0.30),
      spec("bbsse", 102, 7, 7, 152, 0.045, 18, 0.30),
      spec("cse", 103, 7, 7, 239, 0.040, 20, 0.35),
      spec("dk16", 104, 2, 3, 312, 0.045, 22, 0.30),
      spec("keyb", 105, 7, 2, 270, 0.040, 20, 0.35),
      spec("kirkman", 106, 12, 6, 198, 0.045, 18, 0.30),
      spec("planet", 107, 7, 19, 548, 0.035, 26, 0.30),
      spec("pma", 108, 8, 8, 287, 0.040, 22, 0.30),
      spec("s1", 109, 8, 6, 391, 0.040, 24, 0.35),
      spec("sand", 110, 11, 9, 518, 0.035, 26, 0.30),
      spec("scf", 111, 27, 56, 761, 0.030, 30, 0.30),
      spec("styr", 112, 9, 10, 419, 0.040, 24, 0.35),
      // 4 ISCAS'89 stand-ins.
      spec("s298", 201, 3, 6, 119, 0.090, 16, 0.25),
      spec("s400", 202, 3, 6, 162, 0.085, 18, 0.25),
      spec("s526", 203, 3, 6, 193, 0.090, 18, 0.25),
      spec("s953", 204, 16, 23, 395, 0.055, 24, 0.30),
  };
}

std::vector<BenchmarkSpec> tiny_suite() {
  std::vector<BenchmarkSpec> specs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    BenchmarkSpec s;
    s.name = "tiny" + std::to_string(seed);
    s.seed = 7000 + seed;
    s.num_pis = 3;
    s.num_pos = 2;
    s.num_gates = static_cast<int>(18 + 7 * seed);
    s.feedback = 0.10;
    s.locality = 8;
    specs.push_back(s);
  }
  return specs;
}

std::vector<BenchmarkSpec> scaling_suite() {
  std::vector<BenchmarkSpec> specs;
  for (const int gates : {1000, 2000, 4000, 8000, 12000}) {
    BenchmarkSpec s;
    s.name = "scale" + std::to_string(gates);
    s.seed = 9000 + static_cast<std::uint64_t>(gates);
    s.num_pis = 32;
    s.num_pos = 32;
    s.num_gates = gates;
    s.feedback = 0.035;
    s.locality = 40;
    specs.push_back(s);
  }
  return specs;
}

}  // namespace turbosyn
