#pragma once
// Small hand-written circuits (BLIF text and builders) used by tests,
// examples and documentation.

#include <string>

#include "netlist/circuit.hpp"

namespace turbosyn {

/// A 3-bit synchronous counter with enable, written in BLIF.
std::string counter3_blif();

/// A 4-state Mealy FSM (serial 1011 pattern detector), written in BLIF.
std::string pattern_fsm_blif();

/// The paper's Figure 1 situation: a registered loop whose plain mapping
/// cannot reach MDR ratio 1 at K=3, but whose loop function decomposes so
/// TurboSYN can. Returns the circuit (built programmatically).
Circuit figure1_circuit();

/// A ring of `stages` unit-delay gates with `registers` FFs spread on the
/// loop plus an enable input: MDR ratio = stages / registers before mapping.
Circuit ring_circuit(int stages, int registers);

/// A Galois LFSR over `bits` registers with taps at the given positions
/// (positions in [1, bits)): the classic shift-register workload where every
/// loop already has ratio <= 2.
Circuit lfsr_circuit(int bits, std::span<const int> taps);

/// A 2-street traffic-light controller FSM (BLIF): Moore machine with a
/// timer chain — a typical MCNC-FSM-class netlist.
std::string traffic_light_blif();

/// A 4-bit Gray-code counter with enable (BLIF).
std::string gray_counter_blif();

}  // namespace turbosyn
