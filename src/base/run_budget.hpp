#pragma once
// Run budgets and cooperative cancellation for the solver stack.
//
// A RunBudget bundles a wall-clock deadline, a cancellation token and a set
// of resource ceilings (BDD nodes per decomposition attempt, decomposition
// attempts per run, flow augmentations per cut test). Solvers poll check()
// at natural boundaries (sweeps, probes, batch items) and wind down
// gracefully instead of throwing; resource ceilings degrade the affected
// node to its plain K-cut label, which is always a sound fallback because
// decomposition is strictly label-improving.
//
// A default-constructed RunBudget is unlimited and costs one pointer
// comparison per check, so budget-free runs stay bit-identical to the
// pre-budget code. Copies of a RunBudget share state (the deadline latch and
// the attempt counter are common to every holder), so passing budgets by
// value through option structs keeps one logical budget per run.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace turbosyn {

/// Outcome classification carried by LabelResult / FlowResult. Severity is
/// ordered: combine_status() keeps the worse of two outcomes.
enum class Status : std::uint8_t {
  kOk = 0,             // exact result, no budget interfered
  kDegraded,           // a resource ceiling altered the computation (result
                       // is valid but possibly weaker, and an "infeasible"
                       // verdict is no longer a certificate)
  kInvalidInput,       // the input was rejected up front
  kDeadlineExceeded,   // the wall-clock deadline fired; result is best-so-far
  kCancelled,          // the cancellation token fired; result is best-so-far
  kFailed,             // a stage threw (or an injected fault fired) and the
                       // driver contained it: the run is not a deliverable,
                       // never a certificate, never cacheable — see
                       // FlowResult::failed_stage for the boundary that blew
};

const char* status_name(Status s);

/// The worse of two outcomes (Failed > Cancelled > DeadlineExceeded >
/// InvalidInput > Degraded > Ok).
Status combine_status(Status a, Status b);

/// The run was stopped before finishing (vs merely degraded): results are
/// best-so-far, labels from such a probe must not be used for mapping.
inline bool is_interrupt(Status s) {
  return s == Status::kDeadlineExceeded || s == Status::kCancelled;
}

/// Cooperative cancellation flag. cancel() is async-signal-safe (a lock-free
/// atomic store), so it may be called from a SIGINT handler; workers observe
/// it through RunBudget::check() between tasks and at sweep boundaries.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    const CancelToken* parent = parent_.load(std::memory_order_relaxed);
    return parent != nullptr && parent->cancelled();
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

  /// Chains this token under `parent` (nullptr unchains): cancelled() then
  /// also reports true once the parent fires, while cancel() still flips
  /// only this token. The portfolio runner hangs one per-engine token off
  /// the flow-level token this way — cancelling one losing engine never
  /// touches its siblings, but a SIGINT at the flow level stops every
  /// engine. The parent is not owned and must outlive the chained runs.
  void chain_to(const CancelToken* parent) noexcept {
    parent_.store(parent, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<const CancelToken*> parent_{nullptr};
};
static_assert(std::atomic<bool>::is_always_lock_free,
              "CancelToken::cancel must stay async-signal-safe");

/// Process-wide token, the conventional target for SIGINT.
CancelToken& global_cancel_token();

/// Installs a SIGINT handler that cancels global_cancel_token(). Budgets
/// wired to that token then drain cooperatively; a second SIGINT restores
/// the default handler, so it terminates the process as usual.
void install_sigint_cancellation();

/// Same cooperative-cancel handler for SIGTERM: a service manager's polite
/// kill drains batches exactly like Ctrl-C (running circuits wind down to
/// best-so-far, queued circuits are skipped); a second SIGTERM terminates.
void install_sigterm_cancellation();

class RunBudget {
 public:
  /// Unlimited: every check is kOk, every ceiling is off.
  RunBudget() = default;

  /// Wall-clock deadline, measured from now. Once exceeded the verdict is
  /// latched, so clocks are no longer read and all threads agree.
  void set_deadline_after(std::chrono::milliseconds ms);
  void set_deadline_after_ms(std::int64_t ms) { set_deadline_after(std::chrono::milliseconds(ms)); }

  /// Token polled by check(); the token is not owned and must outlive runs.
  void set_cancel_token(const CancelToken* token);
  /// The token check() polls (nullptr when none was set).
  const CancelToken* cancel_token() const { return state_ ? state_->cancel : nullptr; }

  /// Per-attempt BDD node ceiling for decomposition (0 = library default).
  void set_bdd_node_budget(std::size_t nodes);

  /// Total decomposition attempts per run (0 = unlimited); consumed via
  /// try_consume_decomp_attempt().
  void set_decomp_attempt_budget(std::int64_t attempts);

  /// Max augmenting paths per flow-based cut test (0 = unlimited). A test
  /// that hits the ceiling conservatively reports "no cut".
  void set_flow_augment_budget(std::int64_t augmentations);

  /// True iff any knob is configured; the fast "no budget" test.
  bool limited() const { return state_ != nullptr; }

  std::size_t bdd_node_budget() const { return state_ ? state_->bdd_nodes : 0; }
  std::int64_t flow_augment_budget() const { return state_ ? state_->flow_augments : 0; }

  /// Cooperative poll: kCancelled, kDeadlineExceeded, or kOk. Cheap enough
  /// for per-item use (two relaxed loads; a clock read only until the
  /// deadline verdict latches).
  Status check() const;
  bool interrupted() const { return state_ != nullptr && check() != Status::kOk; }

  /// Claims one decomposition attempt; false once the ceiling is spent
  /// (callers then fall back to the plain K-cut label for that node).
  bool try_consume_decomp_attempt() const;

  /// An independent child budget: same resource ceilings, same absolute
  /// deadline and same cancel token, but fresh consumption state (the
  /// deadline latch and the decomposition-attempt counter start over). The
  /// portfolio runner forks one slice per racing engine so a spendthrift
  /// engine cannot exhaust its siblings' attempt budgets; the parent budget
  /// itself is untouched. Forking an unlimited budget yields an unlimited
  /// budget.
  RunBudget fork() const;

  /// Moves the deadline to min(current deadline, now + ms) — a fork may be
  /// narrowed to a pool slice but can never outlive its parent's deadline.
  void tighten_deadline(std::chrono::milliseconds ms);
  void tighten_deadline_ms(std::int64_t ms) { tighten_deadline(std::chrono::milliseconds(ms)); }

 private:
  struct State {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    mutable std::atomic<bool> deadline_hit{false};
    const CancelToken* cancel = nullptr;
    std::size_t bdd_nodes = 0;
    std::int64_t flow_augments = 0;
    std::int64_t decomp_attempts = 0;
    mutable std::atomic<std::int64_t> decomp_attempts_used{0};
  };

  State& mutable_state();

  std::shared_ptr<State> state_;
};

/// Global wall-clock budget that long-lived callers carve per-run slices
/// from: the mapping daemon slices it per request, the portfolio runner per
/// racing engine. total_ms == 0 means an unlimited pool (slices are just the
/// per-request ceiling). Refunding returns a slice's unused portion, so the
/// pool meters actual spend, not reservations.
class BudgetPool {
 public:
  BudgetPool(std::int64_t total_ms, std::int64_t per_request_ms);

  /// The slice for one run: min(requested or per-request ceiling, pool
  /// remaining). 0 = unlimited (only when both the pool and the ceilings
  /// are unlimited); an exhausted pool yields 1ms slices — the run still
  /// happens, reports kDeadlineExceeded best-so-far, and the record says
  /// why.
  std::int64_t carve(std::int64_t requested_ms);

  /// Returns `carved - used` (clamped at 0) to the pool.
  void refund(std::int64_t carved_ms, std::int64_t used_ms);

  /// Milliseconds left (-1 = unlimited).
  std::int64_t remaining() const;
  std::int64_t total() const { return total_ms_; }

 private:
  mutable std::mutex mu_;
  std::int64_t total_ms_;
  std::int64_t per_request_ms_;
  std::int64_t remaining_ms_;
};

}  // namespace turbosyn
