#include "base/truth_table.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace turbosyn {
namespace {

std::size_t word_count_for(int num_vars) {
  return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

void check_arity(int num_vars) {
  TS_CHECK(num_vars >= 0 && num_vars <= TruthTable::kMaxVars,
           "truth table arity " << num_vars << " out of range [0, " << TruthTable::kMaxVars << "]");
}

}  // namespace

void TruthTable::mask_tail() {
  if (num_vars_ < 6) {
    words_[0] &= (std::uint64_t{1} << (std::size_t{1} << num_vars_)) - 1;
  }
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  check_arity(num_vars);
  TruthTable t(num_vars, word_count_for(num_vars));
  if (value) {
    std::fill(t.words_.begin(), t.words_.end(), ~std::uint64_t{0});
    t.mask_tail();
  }
  return t;
}

TruthTable TruthTable::var(int num_vars, int index) {
  check_arity(num_vars);
  TS_CHECK(index >= 0 && index < num_vars, "variable index " << index << " out of range");
  TruthTable t(num_vars, word_count_for(num_vars));
  if (index < 6) {
    // Periodic pattern within each word.
    std::uint64_t pattern = 0;
    for (int i = 0; i < 64; ++i) {
      if ((i >> index) & 1) pattern |= std::uint64_t{1} << i;
    }
    std::fill(t.words_.begin(), t.words_.end(), pattern);
  } else {
    // Whole words alternate in blocks of 2^(index-6).
    const std::size_t block = std::size_t{1} << (index - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w) {
      if ((w / block) & 1) t.words_[w] = ~std::uint64_t{0};
    }
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_words(int num_vars, std::span<const std::uint64_t> words) {
  check_arity(num_vars);
  TruthTable t(num_vars, word_count_for(num_vars));
  TS_CHECK(words.size() >= t.words_.size(),
           "need " << t.words_.size() << " words for " << num_vars << " variables");
  std::copy_n(words.begin(), t.words_.size(), t.words_.begin());
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_binary_string(int num_vars, const std::string& bits) {
  check_arity(num_vars);
  TruthTable t(num_vars, word_count_for(num_vars));
  TS_CHECK(bits.size() == t.num_bits(),
           "binary string length " << bits.size() << " != 2^" << num_vars);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    TS_CHECK(bits[i] == '0' || bits[i] == '1', "invalid character in binary string");
    if (bits[i] == '1') t.set_bit(static_cast<std::uint32_t>(i), true);
  }
  return t;
}

bool TruthTable::bit(std::uint32_t assignment) const {
  TS_ASSERT(assignment < num_bits());
  return (words_[assignment >> 6] >> (assignment & 63)) & 1;
}

void TruthTable::set_bit(std::uint32_t assignment, bool value) {
  TS_ASSERT(assignment < num_bits());
  const std::uint64_t mask = std::uint64_t{1} << (assignment & 63);
  if (value) {
    words_[assignment >> 6] |= mask;
  } else {
    words_[assignment >> 6] &= ~mask;
  }
}

bool TruthTable::is_const0() const {
  return std::all_of(words_.begin(), words_.end(), [](std::uint64_t w) { return w == 0; });
}

bool TruthTable::is_const1() const { return *this == constant(num_vars_, true); }

std::size_t TruthTable::count_ones() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

TruthTable TruthTable::operator~() const {
  TruthTable t(*this);
  for (auto& w : t.words_) w = ~w;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TS_CHECK(num_vars_ == o.num_vars_, "arity mismatch in truth table AND");
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] &= o.words_[i];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  TS_CHECK(num_vars_ == o.num_vars_, "arity mismatch in truth table OR");
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] |= o.words_[i];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  TS_CHECK(num_vars_ == o.num_vars_, "arity mismatch in truth table XOR");
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] ^= o.words_[i];
  return t;
}

bool TruthTable::operator==(const TruthTable& o) const {
  return num_vars_ == o.num_vars_ && words_ == o.words_;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  TS_CHECK(var >= 0 && var < num_vars_, "cofactor variable out of range");
  TruthTable t(*this);
  if (var < 6) {
    const int shift = 1 << var;
    std::uint64_t keep = 0;
    for (std::size_t i = 0; i < 64; ++i) {
      if (((i >> var) & 1) == static_cast<std::size_t>(value)) keep |= std::uint64_t{1} << i;
    }
    for (auto& w : t.words_) {
      const std::uint64_t sel = w & keep;
      w = value ? (sel | (sel >> shift)) : (sel | (sel << shift));
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w) {
      const std::size_t base = (w / (2 * block)) * 2 * block + (w % block);
      t.words_[w] = words_[base + (value ? block : 0)];
    }
  }
  return t;
}

bool TruthTable::depends_on(int var) const {
  return cofactor(var, false) != cofactor(var, true);
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (depends_on(v)) vars.push_back(v);
  }
  return vars;
}

TruthTable TruthTable::remap(int new_num_vars, std::span<const int> var_map) const {
  check_arity(new_num_vars);
  TS_CHECK(static_cast<int>(var_map.size()) == num_vars_, "remap needs one entry per variable");
  TruthTable t(new_num_vars, word_count_for(new_num_vars));
  const std::uint32_t out_bits = static_cast<std::uint32_t>(t.num_bits());
  for (std::uint32_t out = 0; out < out_bits; ++out) {
    std::uint32_t in = 0;
    for (int v = 0; v < num_vars_; ++v) {
      const int nv = var_map[v];
      TS_CHECK(nv >= 0 && nv < new_num_vars, "remap target out of range");
      if ((out >> nv) & 1) in |= std::uint32_t{1} << v;
    }
    if (bit(in)) t.set_bit(out, true);
  }
  return t;
}

TruthTable TruthTable::drop_var(int var) const {
  TS_CHECK(var >= 0 && var < num_vars_, "drop_var variable out of range");
  TS_CHECK(!depends_on(var), "cannot drop a variable in the support");
  TruthTable t(num_vars_ - 1, word_count_for(num_vars_ - 1));
  const std::uint32_t out_bits = static_cast<std::uint32_t>(t.num_bits());
  for (std::uint32_t out = 0; out < out_bits; ++out) {
    const std::uint32_t low = out & ((std::uint32_t{1} << var) - 1);
    const std::uint32_t high = (out >> var) << (var + 1);
    if (bit(high | low)) t.set_bit(out, true);
  }
  return t;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(num_vars_);
  for (std::uint64_t w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  const std::size_t nibbles = std::max<std::size_t>(1, num_bits() / 4);
  for (std::size_t i = nibbles; i-- > 0;) {
    const std::uint64_t w = words_[(i * 4) >> 6];
    s.push_back(digits[(w >> ((i * 4) & 63)) & 0xf]);
  }
  return s;
}

TruthTable compose(const TruthTable& g, std::span<const TruthTable> inputs) {
  TS_CHECK(static_cast<int>(inputs.size()) == g.num_vars(),
           "compose needs one input function per variable of g");
  if (inputs.empty()) return g;  // g is a constant over 0 vars
  const int arity = inputs[0].num_vars();
  for (const auto& in : inputs) {
    TS_CHECK(in.num_vars() == arity, "compose inputs must share arity");
  }
  // Word-parallel minterm expansion: for every on-set row of g, AND the
  // (possibly complemented) input tables together and OR into the result.
  // g has at most K inputs, so this is <= 2^K word-sweeps — far cheaper than
  // per-bit evaluation for the wide tables used during cut extraction.
  TruthTable result = TruthTable::constant(arity, false);
  const std::size_t words = result.num_words();
  for (std::uint32_t row = 0; row < g.num_bits(); ++row) {
    if (!g.bit(row)) continue;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::uint64_t word = inputs[i].word(w);
        acc &= ((row >> i) & 1) ? word : ~word;
        if (acc == 0) break;
      }
      if (acc != 0) {
        result.words_[w] |= acc;
      }
    }
  }
  result.mask_tail();
  return result;
}

}  // namespace turbosyn
