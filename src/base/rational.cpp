#include "base/rational.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

#include "base/check.hpp"

namespace turbosyn {
namespace {

using Int128 = __int128;

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  TS_CHECK(den != 0, "rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

std::int64_t Rational::ceil() const {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

std::int64_t Rational::floor() const {
  if (num_ >= 0) return num_ / den_;
  return -(((-num_) + den_ - 1) / den_);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Rational Rational::operator+(const Rational& o) const {
  const Int128 n = Int128(num_) * o.den_ + Int128(o.num_) * den_;
  const Int128 d = Int128(den_) * o.den_;
  TS_ASSERT(n <= INT64_MAX && n >= INT64_MIN && d <= INT64_MAX);
  return Rational(static_cast<std::int64_t>(n), static_cast<std::int64_t>(d));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  const Int128 n = Int128(num_) * o.num_;
  const Int128 d = Int128(den_) * o.den_;
  TS_ASSERT(n <= INT64_MAX && n >= INT64_MIN && d <= INT64_MAX);
  return Rational(static_cast<std::int64_t>(n), static_cast<std::int64_t>(d));
}

Rational Rational::operator/(const Rational& o) const {
  TS_CHECK(o.num_ != 0, "division of rational by zero");
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return Int128(num_) * o.den_ < Int128(o.num_) * den_;
}

Rational Rational::mediant(const Rational& a, const Rational& b) {
  // Same overflow guard as operator+/operator*: the mediant drives the
  // cycle-ratio search, where silent wraparound would corrupt the interval.
  const Int128 n = Int128(a.num_) + b.num_;
  const Int128 d = Int128(a.den_) + b.den_;
  TS_ASSERT(n <= INT64_MAX && n >= INT64_MIN && d <= INT64_MAX);
  return Rational(static_cast<std::int64_t>(n), static_cast<std::int64_t>(d));
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << '/' << r.den();
  return os;
}

}  // namespace turbosyn
