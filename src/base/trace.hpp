#pragma once
// Scoped trace spans and counters for the staged flow pipeline.
//
// A TraceSink is an in-memory collector of completed spans. A TraceSpan is an
// RAII handle that measures the wall time of a scope and attaches named
// counters; spans nest through a per-thread stack, so a stage span contains
// the probe spans it ran. Work handed to a thread pool escapes that stack, so
// spans opened on worker threads take the enclosing span as an explicit
// parent (the portfolio runner nests each engine lane under the race root
// this way). The sink serializes to a stable JSON schema (the mains expose it
// as --trace-json=<path>):
//
//   {
//     "version": 1,
//     "total_seconds": <sum of root-span wall times>,
//     "counters": { "<name>": <sum over all spans>, ... },
//     "spans": [
//       { "id": 0, "parent": -1, "depth": 0, "name": "flow:turbosyn",
//         "detail": "", "start_s": 0.000012, "seconds": 0.873421,
//         "counters": { "probes": 4 } },
//       ...
//     ]
//   }
//
// `start_s` is relative to the sink's construction; spans are listed in open
// order (ids are assigned when a span opens). A null sink pointer disables
// tracing: spans become inert and cost one branch. An enabled sink costs one
// mutex acquisition per completed span — spans are opened per stage and per
// φ probe, never per node, so contention is irrelevant.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace turbosyn {

/// One completed span, as recorded by the sink.
struct TraceEvent {
  int id = 0;
  int parent = -1;  // id of the enclosing span, -1 for roots
  int depth = 0;
  std::string name;
  std::string detail;
  double start_s = 0.0;   // relative to the sink's construction
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

class TraceSink {
 public:
  TraceSink();

  /// Completed spans in open order (ids ascending).
  std::vector<TraceEvent> events() const;

  /// Counters summed over every span.
  std::map<std::string, std::int64_t> totals() const;

  /// Sum of root-span (depth 0) wall times.
  double total_seconds() const;

  std::string to_json() const;
  void write_json(std::ostream& os) const;
  /// Returns false (and leaves no partial file guarantees) when the path
  /// cannot be opened for writing.
  bool write_json_file(const std::string& path) const;

 private:
  friend class TraceSpan;

  int begin_span();               // claims an id
  void post(TraceEvent event);    // records a completed span

  mutable std::mutex mu_;
  int next_id_ = 0;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Construct with the sink (nullptr = inert) and a name; the span
/// measures until destruction. Counters accumulate by name within the span.
class TraceSpan {
 public:
  TraceSpan() = default;  // inert
  TraceSpan(TraceSink* sink, std::string name, std::string detail = {});
  /// Explicit-parent form for spans opened on a different thread than their
  /// logical parent (e.g. pool lanes). Inherits the parent's sink; the parent
  /// must stay open for the child's lifetime. An inert parent yields an inert
  /// child.
  TraceSpan(const TraceSpan& parent, std::string name, std::string detail = {});
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  bool enabled() const { return sink_ != nullptr; }
  void set_detail(std::string detail);
  void counter(const std::string& name, std::int64_t value);
  /// Wall time since the span opened (0 for inert spans).
  double seconds_so_far() const;

 private:
  TraceSink* sink_ = nullptr;
  TraceEvent event_;
  std::chrono::steady_clock::time_point start_{};
  TraceSpan* outer_ = nullptr;  // enclosing span on this thread
};

}  // namespace turbosyn
