#include "base/run_budget.hpp"

#include <csignal>

namespace turbosyn {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDegraded:
      return "degraded";
    case Status::kInvalidInput:
      return "invalid_input";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kFailed:
      return "failed";
  }
  return "unknown";
}

Status combine_status(Status a, Status b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

namespace {

extern "C" void sigint_cancel_handler(int sig) {
  global_cancel_token().cancel();
  // A second SIGINT falls through to the default disposition (terminate),
  // so a stuck run can still be killed from the keyboard.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_sigint_cancellation() { std::signal(SIGINT, sigint_cancel_handler); }

void install_sigterm_cancellation() { std::signal(SIGTERM, sigint_cancel_handler); }

RunBudget::State& RunBudget::mutable_state() {
  if (!state_) state_ = std::make_shared<State>();
  return *state_;
}

void RunBudget::set_deadline_after(std::chrono::milliseconds ms) {
  State& s = mutable_state();
  s.has_deadline = true;
  s.deadline = std::chrono::steady_clock::now() + ms;
}

void RunBudget::set_cancel_token(const CancelToken* token) { mutable_state().cancel = token; }

void RunBudget::set_bdd_node_budget(std::size_t nodes) { mutable_state().bdd_nodes = nodes; }

void RunBudget::set_decomp_attempt_budget(std::int64_t attempts) {
  mutable_state().decomp_attempts = attempts;
}

void RunBudget::set_flow_augment_budget(std::int64_t augmentations) {
  mutable_state().flow_augments = augmentations;
}

Status RunBudget::check() const {
  const State* s = state_.get();
  if (s == nullptr) return Status::kOk;
  if (s->cancel != nullptr && s->cancel->cancelled()) return Status::kCancelled;
  if (s->has_deadline) {
    if (s->deadline_hit.load(std::memory_order_relaxed)) return Status::kDeadlineExceeded;
    if (std::chrono::steady_clock::now() >= s->deadline) {
      s->deadline_hit.store(true, std::memory_order_relaxed);
      return Status::kDeadlineExceeded;
    }
  }
  return Status::kOk;
}

bool RunBudget::try_consume_decomp_attempt() const {
  const State* s = state_.get();
  if (s == nullptr || s->decomp_attempts <= 0) return true;
  return s->decomp_attempts_used.fetch_add(1, std::memory_order_relaxed) < s->decomp_attempts;
}

}  // namespace turbosyn
