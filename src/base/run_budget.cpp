#include "base/run_budget.hpp"

#include <algorithm>
#include <csignal>

namespace turbosyn {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDegraded:
      return "degraded";
    case Status::kInvalidInput:
      return "invalid_input";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kFailed:
      return "failed";
  }
  return "unknown";
}

Status combine_status(Status a, Status b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

namespace {

extern "C" void sigint_cancel_handler(int sig) {
  global_cancel_token().cancel();
  // A second SIGINT falls through to the default disposition (terminate),
  // so a stuck run can still be killed from the keyboard.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_sigint_cancellation() { std::signal(SIGINT, sigint_cancel_handler); }

void install_sigterm_cancellation() { std::signal(SIGTERM, sigint_cancel_handler); }

RunBudget::State& RunBudget::mutable_state() {
  if (!state_) state_ = std::make_shared<State>();
  return *state_;
}

void RunBudget::set_deadline_after(std::chrono::milliseconds ms) {
  State& s = mutable_state();
  s.has_deadline = true;
  s.deadline = std::chrono::steady_clock::now() + ms;
}

void RunBudget::set_cancel_token(const CancelToken* token) { mutable_state().cancel = token; }

void RunBudget::set_bdd_node_budget(std::size_t nodes) { mutable_state().bdd_nodes = nodes; }

void RunBudget::set_decomp_attempt_budget(std::int64_t attempts) {
  mutable_state().decomp_attempts = attempts;
}

void RunBudget::set_flow_augment_budget(std::int64_t augmentations) {
  mutable_state().flow_augments = augmentations;
}

Status RunBudget::check() const {
  const State* s = state_.get();
  if (s == nullptr) return Status::kOk;
  if (s->cancel != nullptr && s->cancel->cancelled()) return Status::kCancelled;
  if (s->has_deadline) {
    if (s->deadline_hit.load(std::memory_order_relaxed)) return Status::kDeadlineExceeded;
    if (std::chrono::steady_clock::now() >= s->deadline) {
      s->deadline_hit.store(true, std::memory_order_relaxed);
      return Status::kDeadlineExceeded;
    }
  }
  return Status::kOk;
}

bool RunBudget::try_consume_decomp_attempt() const {
  const State* s = state_.get();
  if (s == nullptr || s->decomp_attempts <= 0) return true;
  return s->decomp_attempts_used.fetch_add(1, std::memory_order_relaxed) < s->decomp_attempts;
}

RunBudget RunBudget::fork() const {
  RunBudget child;
  const State* s = state_.get();
  if (s == nullptr) return child;
  State& cs = child.mutable_state();
  cs.has_deadline = s->has_deadline;
  cs.deadline = s->deadline;
  cs.cancel = s->cancel;
  cs.bdd_nodes = s->bdd_nodes;
  cs.flow_augments = s->flow_augments;
  cs.decomp_attempts = s->decomp_attempts;
  return child;
}

void RunBudget::tighten_deadline(std::chrono::milliseconds ms) {
  const auto candidate = std::chrono::steady_clock::now() + ms;
  State& s = mutable_state();
  if (!s.has_deadline || candidate < s.deadline) {
    s.has_deadline = true;
    s.deadline = candidate;
  }
}

// ----------------------------------------------------------------- pool ----

BudgetPool::BudgetPool(std::int64_t total_ms, std::int64_t per_request_ms)
    : total_ms_(total_ms > 0 ? total_ms : 0),
      per_request_ms_(per_request_ms > 0 ? per_request_ms : 0),
      remaining_ms_(total_ms_) {}

std::int64_t BudgetPool::carve(std::int64_t requested_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::int64_t want = requested_ms > 0 ? requested_ms : per_request_ms_;
  if (per_request_ms_ > 0 && (want == 0 || want > per_request_ms_)) {
    want = per_request_ms_;
  }
  if (total_ms_ == 0) return want;  // unlimited pool: the ceiling alone governs
  std::int64_t slice = want > 0 ? std::min(want, remaining_ms_) : remaining_ms_;
  // An exhausted pool still serves: a 1ms slice makes the request report
  // kDeadlineExceeded honestly instead of hanging admission on refunds.
  if (slice < 1) slice = 1;
  remaining_ms_ -= std::min(slice, remaining_ms_);
  return slice;
}

void BudgetPool::refund(std::int64_t carved_ms, std::int64_t used_ms) {
  if (total_ms_ == 0 || carved_ms <= 0) return;
  const std::int64_t unused =
      std::max<std::int64_t>(0, carved_ms - std::max<std::int64_t>(0, used_ms));
  const std::lock_guard<std::mutex> lock(mu_);
  remaining_ms_ = std::min(total_ms_, remaining_ms_ + unused);
}

std::int64_t BudgetPool::remaining() const {
  if (total_ms_ == 0) return -1;
  const std::lock_guard<std::mutex> lock(mu_);
  return remaining_ms_;
}

}  // namespace turbosyn
