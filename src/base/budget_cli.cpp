#include "base/budget_cli.hpp"

#include <cstdlib>

namespace turbosyn {

RunBudget budget_from_cli(int argc, char** argv) {
  RunBudget budget;
  budget.set_cancel_token(&global_cancel_token());
  install_sigint_cancellation();
  install_sigterm_cancellation();
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--deadline-ms") {
      budget.set_deadline_after_ms(std::atoll(argv[++i]));
    } else if (flag == "--bdd-node-budget") {
      budget.set_bdd_node_budget(static_cast<std::size_t>(std::atoll(argv[++i])));
    } else if (flag == "--decomp-attempt-budget") {
      budget.set_decomp_attempt_budget(std::atoll(argv[++i]));
    } else if (flag == "--flow-augment-budget") {
      budget.set_flow_augment_budget(std::atoll(argv[++i]));
    }
  }
  return budget;
}

const char* budget_cli_help() {
  return "[--deadline-ms N] [--bdd-node-budget N] [--decomp-attempt-budget N] "
         "[--flow-augment-budget N]  (Ctrl-C cancels cooperatively)";
}

}  // namespace turbosyn
