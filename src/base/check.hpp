#pragma once
// Error handling primitives used across the TurboSYN libraries.
//
// Invariant violations and malformed inputs throw turbosyn::Error; internal
// logic errors use TS_ASSERT which aborts via the same exception type so that
// tests can observe them.

#include <sstream>
#include <stdexcept>
#include <string>

namespace turbosyn {

/// Exception thrown on malformed input or violated invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace turbosyn

/// Validates a runtime condition (inputs, file formats, API contracts).
#define TS_CHECK(cond, msg)                                                      \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream ts_check_os_;                                           \
      ts_check_os_ << msg;                                                       \
      ::turbosyn::detail::fail("check", #cond, __FILE__, __LINE__,               \
                               ts_check_os_.str());                              \
    }                                                                            \
  } while (0)

/// Validates an internal invariant; failure indicates a bug in this library.
#define TS_ASSERT(cond)                                                          \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::turbosyn::detail::fail("assert", #cond, __FILE__, __LINE__, "");         \
    }                                                                            \
  } while (0)
