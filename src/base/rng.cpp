#include "base/rng.hpp"

#include "base/check.hpp"

namespace turbosyn {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TS_CHECK(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  TS_CHECK(lo <= hi, "next_in requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace turbosyn
