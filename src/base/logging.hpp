#pragma once
// Minimal leveled logging to stderr.
//
// The algorithms are silent by default; verbose tracing of the label
// computation and binary search can be enabled globally (examples do this
// behind a --verbose flag).

#include <iostream>
#include <sstream>

namespace turbosyn {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

/// Global log threshold; messages above it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace turbosyn

#define TS_LOG_AT(level, msg)                                   \
  do {                                                          \
    if (static_cast<int>(::turbosyn::log_level()) >=            \
        static_cast<int>(level)) {                              \
      std::ostringstream ts_log_os_;                            \
      ts_log_os_ << msg;                                        \
      ::turbosyn::detail::log_line(level, ts_log_os_.str());    \
    }                                                           \
  } while (0)

#define TS_INFO(msg) TS_LOG_AT(::turbosyn::LogLevel::kInfo, msg)
#define TS_DEBUG(msg) TS_LOG_AT(::turbosyn::LogLevel::kDebug, msg)
