#pragma once
// Deterministic pseudo-random number generator (xoshiro256**).
//
// All stochastic components (workload generation, randomized property tests)
// draw from this generator so that every run of the repository is
// reproducible from a fixed seed.

#include <cstdint>

namespace turbosyn {

/// xoshiro256** by Blackman & Vigna; deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound), bound > 0 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t s_[4];
};

}  // namespace turbosyn
