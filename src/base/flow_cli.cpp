#include "base/flow_cli.hpp"

#include <cstdlib>
#include <iostream>

#include "base/budget_cli.hpp"
#include "base/failpoint.hpp"
#include "base/trace.hpp"

namespace turbosyn {

FlowCli::FlowCli() = default;
FlowCli::~FlowCli() = default;
FlowCli::FlowCli(FlowCli&&) noexcept = default;
FlowCli& FlowCli::operator=(FlowCli&&) noexcept = default;

bool FlowCli::write_trace() const {
  if (trace_json_path.empty()) return true;
  if (!trace_sink_->write_json_file(trace_json_path)) {
    std::cerr << "error: cannot write trace to " << trace_json_path << '\n';
    return false;
  }
  return true;
}

FlowCli flow_cli_from_args(int argc, char** argv) {
  FlowCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (a == "--audit") {
      cli.audit = true;
    } else if (a == "--quick") {
      cli.quick = true;
    } else if (a == "--full") {
      cli.full = true;
    } else if (a == "--incremental") {
      cli.incremental = true;
    } else if (a == "--no-incremental") {
      cli.incremental = false;
    } else if (a.rfind("--trace-json=", 0) == 0) {
      cli.trace_json_path = a.substr(std::string("--trace-json=").size());
    } else if (a == "--trace-json" && i + 1 < argc) {
      cli.trace_json_path = argv[++i];
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      cli.cache_dir = a.substr(std::string("--cache-dir=").size());
    } else if (a == "--cache-dir" && i + 1 < argc) {
      cli.cache_dir = argv[++i];
    } else if (a.rfind("--failpoints=", 0) == 0) {
      cli.failpoints = a.substr(std::string("--failpoints=").size());
    } else if (a == "--failpoints" && i + 1 < argc) {
      cli.failpoints = argv[++i];
    }
  }
  // Env first, flag second: a flag clause overrides the same site from the
  // environment. A malformed spec is a usage error, not a silent no-fault run.
  if (!failpoint::configure_from_env()) std::exit(2);
  if (!cli.failpoints.empty()) {
    std::string error;
    if (!failpoint::configure(cli.failpoints, &error)) {
      std::cerr << "error: --failpoints: " << error << '\n';
      std::exit(2);
    }
  }
  cli.budget = budget_from_cli(argc, argv);
  if (!cli.trace_json_path.empty()) cli.trace_sink_ = std::make_unique<TraceSink>();
  return cli;
}

std::string flow_cli_help() {
  std::string help =
      "[--threads N] (0 = all cores, 1 = sequential) [--audit] [--quick | --full]\n"
      "[--incremental | --no-incremental] (dirty-set warm-start label reuse; default on)\n"
      "[--trace-json=PATH] (per-stage/per-probe trace of the run)\n"
      "[--cache-dir=PATH] (persistent flow-artifact cache)\n"
      "[--failpoints=SPEC] (deterministic fault injection, e.g. "
      "cache.entry.write=error*2; see base/failpoint.hpp)\n";
  help += budget_cli_help();
  return help;
}

}  // namespace turbosyn
