#include "base/flow_cli.hpp"

#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <limits>

#include "base/budget_cli.hpp"
#include "base/failpoint.hpp"
#include "base/trace.hpp"

namespace turbosyn {

bool parse_int_strict(std::string_view text, long long lo, long long hi, long long& out) {
  if (text.empty()) return false;
  std::size_t pos = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    pos = 1;
  }
  if (pos >= text.size()) return false;
  long long value = 0;
  for (; pos < text.size(); ++pos) {
    const char ch = text[pos];
    if (ch < '0' || ch > '9') return false;
    // Overflow-safe accumulate against the relevant bound.
    const int digit = ch - '0';
    if (negative) {
      if (value < (std::numeric_limits<long long>::min() + digit) / 10) return false;
      value = value * 10 - digit;
    } else {
      if (value > (std::numeric_limits<long long>::max() - digit) / 10) return false;
      value = value * 10 + digit;
    }
  }
  if (value < lo || value > hi) return false;
  out = value;
  return true;
}

bool parse_int_strict(std::string_view text, int lo, int hi, int& out) {
  long long wide = 0;
  if (!parse_int_strict(text, static_cast<long long>(lo), static_cast<long long>(hi), wide)) {
    return false;
  }
  out = static_cast<int>(wide);
  return true;
}

FlowCli::FlowCli() = default;
FlowCli::~FlowCli() = default;
FlowCli::FlowCli(FlowCli&&) noexcept = default;
FlowCli& FlowCli::operator=(FlowCli&&) noexcept = default;

bool FlowCli::write_trace() const {
  if (trace_json_path.empty()) return true;
  if (!trace_sink_->write_json_file(trace_json_path)) {
    std::cerr << "error: cannot write trace to " << trace_json_path << '\n';
    return false;
  }
  return true;
}

FlowCli flow_cli_from_args(int argc, char** argv) {
  FlowCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      // Strict: "--threads abc" used to atoi() to 0 and silently grab every
      // core, and negative counts were accepted; both are usage errors now.
      if (!parse_int_strict(argv[++i], 0, 1 << 16, cli.threads)) {
        std::cerr << "error: --threads expects an integer in [0, " << (1 << 16) << "], got '"
                  << argv[i] << "' (0 = all cores, 1 = sequential)\n";
        std::exit(2);
      }
    } else if (a == "--audit") {
      cli.audit = true;
    } else if (a == "--quick") {
      cli.quick = true;
    } else if (a == "--full") {
      cli.full = true;
    } else if (a == "--incremental") {
      cli.incremental = true;
    } else if (a == "--no-incremental") {
      cli.incremental = false;
    } else if (a.rfind("--trace-json=", 0) == 0) {
      cli.trace_json_path = a.substr(std::string("--trace-json=").size());
    } else if (a == "--trace-json" && i + 1 < argc) {
      cli.trace_json_path = argv[++i];
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      cli.cache_dir = a.substr(std::string("--cache-dir=").size());
    } else if (a == "--cache-dir" && i + 1 < argc) {
      cli.cache_dir = argv[++i];
    } else if (a.rfind("--failpoints=", 0) == 0) {
      cli.failpoints = a.substr(std::string("--failpoints=").size());
    } else if (a == "--failpoints" && i + 1 < argc) {
      cli.failpoints = argv[++i];
    } else if (a.rfind("--portfolio=", 0) == 0) {
      cli.portfolio = a.substr(std::string("--portfolio=").size());
    } else if (a == "--portfolio" && i + 1 < argc) {
      cli.portfolio = argv[++i];
    } else if (a == "--engines-list") {
      cli.engines_list = true;
    }
  }
  // Env first, flag second: a flag clause overrides the same site from the
  // environment. A malformed spec is a usage error, not a silent no-fault run.
  if (!failpoint::configure_from_env()) std::exit(2);
  if (!cli.failpoints.empty()) {
    std::string error;
    if (!failpoint::configure(cli.failpoints, &error)) {
      std::cerr << "error: --failpoints: " << error << '\n';
      std::exit(2);
    }
  }
  cli.budget = budget_from_cli(argc, argv);
  if (!cli.trace_json_path.empty()) cli.trace_sink_ = std::make_unique<TraceSink>();
  return cli;
}

std::string flow_cli_help() {
  std::string help =
      "[--threads N] (0 = all cores, 1 = sequential) [--audit] [--quick | --full]\n"
      "[--incremental | --no-incremental] (dirty-set warm-start label reuse; default on)\n"
      "[--trace-json=PATH] (per-stage/per-probe trace of the run)\n"
      "[--cache-dir=PATH] (persistent flow-artifact cache)\n"
      "[--failpoints=SPEC] (deterministic fault injection, e.g. "
      "cache.entry.write=error*2; see base/failpoint.hpp)\n"
      "[--portfolio=E1,E2,...] (race registry engines, keep the best certified "
      "result)\n"
      "[--engines-list] (print the engine registry and exit)\n";
  help += budget_cli_help();
  return help;
}

}  // namespace turbosyn
