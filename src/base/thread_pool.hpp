#pragma once
// Work-stealing thread pool for data-parallel loops.
//
// The pool targets the label-computation hot path: many independent,
// similarly-expensive items (one cut test per gate) dispatched every sweep.
// for_each() partitions the item range into one contiguous chunk per
// participant; each chunk is drained through an atomic cursor, and a
// participant that exhausts its own chunk steals from the chunk with the
// most remaining work. Claiming an item is one relaxed fetch_add, so the
// scheme is decentralized like a deque-based stealing pool but needs no
// per-task allocation or locking.
//
// Workers are parked on a condition variable between jobs; the calling
// thread always participates, so a pool of W workers runs W+1 lanes.
// for_each() calls are serialized (nested/concurrent calls from inside a
// worker would deadlock and are not supported).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace turbosyn {

class RunBudget;

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 = hardware concurrency - 1 but
  /// at least 1, so that the participating caller brings the total to the
  /// core count).
  explicit ThreadPool(int num_workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(item, lane) for every item in [0, n), blocking until all items
  /// completed. `lane` is the index of the executing participant — unique
  /// among concurrent executors and always < num_workers() + 1, so callers
  /// can index per-lane scratch arrays with it. The calling thread
  /// participates (its lane is the highest in use). `max_workers` (0 = all)
  /// bounds how many pool workers join in. The first exception thrown by an
  /// item is rethrown here after every item finished. `interrupt` (optional)
  /// is polled between items: once it reports cancellation or an expired
  /// deadline, the remaining items are skipped (still counted, so the job
  /// drains deterministically and for_each returns promptly).
  void for_each(std::size_t n, const std::function<void(std::size_t item, int lane)>& fn,
                int max_workers = 0, const RunBudget* interrupt = nullptr);

  /// Process-wide shared pool, created on first use and sized so that the
  /// caller plus the workers match the hardware concurrency.
  static ThreadPool& global();

 private:
  struct alignas(64) Range {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  /// One for_each() invocation; lives on the caller's stack. The caller does
  /// not return until remaining == 0 and active_workers == 0, so workers that
  /// registered under the mutex may use the job without further locking.
  struct Job {
    const std::function<void(std::size_t, int)>* fn = nullptr;
    Range* ranges = nullptr;
    int num_ranges = 0;
    std::size_t remaining = 0;  // items not yet completed
    int active_workers = 0;     // workers currently inside run_ranges()
    std::exception_ptr error;
    const RunBudget* interrupt = nullptr;  // skip items once it fires
  };

  void worker_loop(int id);
  /// Drains own range, then steals; returns the number of items completed.
  std::size_t run_ranges(Job& job, int lane);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new job was published
  std::condition_variable done_cv_;  // caller: the job may have completed
  std::uint64_t job_seq_ = 0;
  Job* job_ = nullptr;               // guarded by mutex_
  std::unique_ptr<Range[]> ranges_;  // reused chunk cursors (capacity below)
  int ranges_capacity_ = 0;
  bool stop_ = false;

  std::mutex call_mutex_;  // serializes for_each()
  std::vector<std::thread> threads_;
};

}  // namespace turbosyn
