#pragma once
// Shared command-line plumbing for the flow-running mains.
//
// Every example and benchmark main accepts the same knobs; parsing them
// lived as near-identical loops in eight mains before this header. One call
// collects them all:
//
//   --threads N          label engine parallelism (0 = all cores, 1 = seq)
//   --audit              re-verify every invariant of each result
//   --quick / --full     benchmark regime selectors (mains interpret them)
//   --trace-json=PATH    write a per-stage/per-probe trace of the run(s)
//                        (see base/trace.hpp for the schema); also accepted
//                        as "--trace-json PATH"
//   --cache-dir=PATH     persistent flow-artifact cache directory (see
//                        cache/flow_cache.hpp); also "--cache-dir PATH".
//                        Mains construct the FlowCache from `cache_dir`
//                        themselves (this library does not depend on it).
//   --failpoints=SPEC    arm deterministic fault-injection sites (see
//                        base/failpoint.hpp for the spec grammar); also
//                        "--failpoints SPEC". The TS_FAILPOINTS environment
//                        variable is applied first, so a flag can override
//                        individual sites of an env-armed schedule.
//   --incremental / --no-incremental
//                        dirty-set incremental label recomputation for
//                        warm-seeded plain-update probes, plus near-miss
//                        cache warm starts (default on; results are
//                        bit-identical either way)
//   --deadline-ms N and the other run-budget ceilings (base/budget_cli.hpp);
//   a SIGINT handler is installed so Ctrl-C cancels cooperatively.
//
// Unrecognized arguments are ignored, so positional arguments and
// main-specific flags pass through untouched.

#include <memory>
#include <string>
#include <string_view>

#include "base/run_budget.hpp"

namespace turbosyn {

class TraceSink;

class FlowCli {
 public:
  FlowCli();
  ~FlowCli();
  FlowCli(FlowCli&&) noexcept;
  FlowCli& operator=(FlowCli&&) noexcept;

  int threads = 0;
  bool audit = false;
  bool quick = false;
  bool full = false;
  bool incremental = true;  // assign to FlowOptions::incremental
  /// --engines-list was given: the main should print the engine registry
  /// (engine_list_text() in core/engines.hpp) and exit 0. Collected here as
  /// a flag because this library sits below core and cannot see the
  /// registry itself.
  bool engines_list = false;
  RunBudget budget;
  std::string trace_json_path;  // empty: tracing disabled
  std::string cache_dir;        // empty: caching disabled
  std::string failpoints;       // armed spec (env + flag), for logs; may be empty
  /// --portfolio=LIST engine race spec (comma-separated registry names,
  /// e.g. "turbosyn,turbomap,flowsyn_s"). Empty: no portfolio. Mains
  /// resolve and validate it with parse_portfolio (core/portfolio.hpp) —
  /// unknown names must exit 2 there, naming the engine.
  std::string portfolio;

  /// The owned trace sink, or nullptr when --trace-json was not given.
  /// Assign to FlowOptions::trace.
  TraceSink* trace() const { return trace_sink_.get(); }

  /// Writes the trace JSON to --trace-json's path. No-op (returning true)
  /// when tracing is disabled; prints to stderr and returns false when the
  /// file cannot be written. Call once after the flows finish.
  bool write_trace() const;

 private:
  friend FlowCli flow_cli_from_args(int argc, char** argv);
  std::unique_ptr<TraceSink> trace_sink_;
};

/// Strict base-10 integer parsing for CLI flags and protocol fields:
/// optional leading '-', digits only, the whole token consumed, result
/// within [lo, hi]. Returns false (leaving `out` untouched) on anything
/// else. Unlike std::atoi, "abc" never silently becomes 0 and "3x" never
/// becomes 3 — the daemon's request parser and every flag that feeds a
/// thread/worker count share this one validator.
bool parse_int_strict(std::string_view text, long long lo, long long hi, long long& out);

/// parse_int_strict for int-sized flags.
bool parse_int_strict(std::string_view text, int lo, int hi, int& out);

/// Scans argv for the flags above (ignoring unrelated arguments), wires the
/// budget to global_cancel_token(), and installs the SIGINT handler. Call
/// once at the top of main(). Exits with status 2 (after printing to
/// stderr) on a malformed value for a recognized flag — "--threads abc"
/// must never silently run as "--threads 0" (all cores).
FlowCli flow_cli_from_args(int argc, char** argv);

/// Usage blurb for the flags flow_cli_from_args() understands (includes the
/// budget flags).
std::string flow_cli_help();

}  // namespace turbosyn
