#pragma once
// Shared JSON helpers for every emitter and the daemon protocol parser.
//
// Three independent emitters grew their own JSON escaping (the batch
// runner's record lines, the trace sink, and now the mapping daemon's
// protocol replies), and two of them disagreed on '\r' — a carriage return
// in a circuit name would round-trip through one file but not the other.
// This header is the single definition all of them share, plus:
//
//   - json_double(): a round-trippable decimal rendering of a double (the
//     shortest of %.15g/%.16g/%.17g that strtod()s back to the exact same
//     bits). Default ostream formatting keeps 6 significant digits, which
//     silently loses precision for any run longer than ~16 minutes worth of
//     seconds — enough to break "sum of per-record seconds == ledger total"
//     checks downstream.
//   - parse_flat_json_object(): a strict parser for the one-line, flat
//     (non-nested) JSON objects the mapping daemon's request protocol uses.
//     Numbers keep their raw spelling so callers can apply their own range
//     validation (parse_int_strict in base/flow_cli.hpp).

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace turbosyn {

/// Appends the JSON string-escaped form of `s` (without surrounding
/// quotes): explicit short escapes for " \ \n \t \r, \u00XX for the other
/// control characters, everything else verbatim.
void json_escape(std::string& out, std::string_view s);

/// Appends `s` as a quoted, escaped JSON string.
void json_append_string(std::string& out, std::string_view s);

/// `s` as a quoted, escaped JSON string.
std::string json_quote(std::string_view s);

/// Decimal rendering of `value` that parses back to the exact same double
/// (shortest of precision 15..17). Non-finite values render as "0" — JSON
/// has no spelling for them and every emitted quantity here is a duration
/// or counter, where 0 is the honest fallback.
std::string json_double(double value);

/// One scalar value of a flat protocol object. Numbers are NOT converted:
/// `text` keeps the raw spelling ("12", "-3.5e2") so the caller can run its
/// own strict/range validation instead of inheriting atoi semantics.
struct JsonScalar {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string text;     // decoded string content, or the raw number spelling
  bool boolean = false; // kBool only
};

/// Parses one flat JSON object — string/number/true/false/null values only,
/// no nested objects or arrays — into (key, value) pairs in source order.
/// Strings decode the escapes json_escape() emits (including \u00XX for
/// codepoints below 0x80; anything else is rejected rather than silently
/// mangled). Returns false and sets `error` (if non-null) on any deviation:
/// trailing garbage, duplicate-comma, unterminated string, nesting.
bool parse_flat_json_object(std::string_view line,
                            std::vector<std::pair<std::string, JsonScalar>>& fields,
                            std::string* error = nullptr);

}  // namespace turbosyn
