#include "base/json_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace turbosyn {

void json_escape(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  json_escape(out, s);
  out += '"';
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_string(out, s);
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

namespace {

/// Cursor over one protocol line; every helper reports failure by setting
/// `error` and returning false, and the caller unwinds.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(std::string message) {
    if (error.empty()) error = std::move(message);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
  }
  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  bool consume(char ch) {
    skip_ws();
    if (pos >= text.size() || text[pos] != ch) {
      return fail(std::string("expected '") + ch + "' at offset " + std::to_string(pos));
    }
    ++pos;
    return true;
  }
  bool peek_is(char ch) {
    skip_ws();
    return pos < text.size() && text[pos] == ch;
  }
};

int hex_digit(char ch) {
  if (ch >= '0' && ch <= '9') return ch - '0';
  if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
  if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
  return -1;
}

bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (c.pos < c.text.size()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) {
      return c.fail("unescaped control character in string");
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.pos >= c.text.size()) break;
    const char esc = c.text[c.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c.pos + 4 > c.text.size()) return c.fail("truncated \\u escape");
        int code = 0;
        for (int i = 0; i < 4; ++i) {
          const int digit = hex_digit(c.text[c.pos + static_cast<std::size_t>(i)]);
          if (digit < 0) return c.fail("bad \\u escape digits");
          code = code * 16 + digit;
        }
        c.pos += 4;
        // The emitters only produce \u00XX for control characters; decoding
        // is bounded to ASCII so a multi-byte codepoint is an explicit error
        // instead of mojibake.
        if (code >= 0x80) return c.fail("\\u escape above 0x7f is not supported");
        out += static_cast<char>(code);
        break;
      }
      default:
        return c.fail(std::string("unknown escape '\\") + esc + "'");
    }
  }
  return c.fail("unterminated string");
}

bool parse_scalar(Cursor& c, JsonScalar& out) {
  c.skip_ws();
  if (c.pos >= c.text.size()) return c.fail("missing value");
  const char ch = c.text[c.pos];
  if (ch == '"') {
    out.kind = JsonScalar::Kind::kString;
    return parse_string(c, out.text);
  }
  if (ch == '{' || ch == '[') return c.fail("nested objects/arrays are not supported");
  // Bare literal: number, true, false, null — everything up to a delimiter.
  const std::size_t start = c.pos;
  while (c.pos < c.text.size() && c.text[c.pos] != ',' && c.text[c.pos] != '}' &&
         c.text[c.pos] != ' ' && c.text[c.pos] != '\t') {
    ++c.pos;
  }
  const std::string_view token = c.text.substr(start, c.pos - start);
  if (token == "true" || token == "false") {
    out.kind = JsonScalar::Kind::kBool;
    out.boolean = token == "true";
    out.text = token;
    return true;
  }
  if (token == "null") {
    out.kind = JsonScalar::Kind::kNull;
    out.text = token;
    return true;
  }
  if (token.empty()) return c.fail("missing value");
  for (const char t : token) {
    const bool numeric = (t >= '0' && t <= '9') || t == '-' || t == '+' || t == '.' ||
                         t == 'e' || t == 'E';
    if (!numeric) return c.fail("bad literal '" + std::string(token) + "'");
  }
  out.kind = JsonScalar::Kind::kNumber;
  out.text = token;
  return true;
}

}  // namespace

bool parse_flat_json_object(std::string_view line,
                            std::vector<std::pair<std::string, JsonScalar>>& fields,
                            std::string* error) {
  fields.clear();
  Cursor c{line};
  const auto report = [&](bool ok) {
    if (!ok && error != nullptr) *error = c.error.empty() ? "malformed object" : c.error;
    return ok;
  };
  if (!c.consume('{')) return report(false);
  if (!c.peek_is('}')) {
    while (true) {
      std::string key;
      if (!parse_string(c, key)) return report(false);
      if (!c.consume(':')) return report(false);
      JsonScalar value;
      if (!parse_scalar(c, value)) return report(false);
      fields.emplace_back(std::move(key), std::move(value));
      if (c.peek_is(',')) {
        c.consume(',');
        continue;
      }
      break;
    }
  }
  if (!c.consume('}')) return report(false);
  if (!c.at_end()) return report(c.fail("trailing garbage after object"));
  return true;
}

}  // namespace turbosyn
