#pragma once
// Shared command-line plumbing for run budgets.
//
// Every main that runs a flow accepts the same knobs:
//   --deadline-ms N           wall-clock budget for each flow invocation
//   --bdd-node-budget N       BDD node ceiling per decomposition attempt
//   --decomp-attempt-budget N total decomposition attempts per run
//   --flow-augment-budget N   augmenting paths per flow-based cut test
// and a SIGINT handler is installed so Ctrl-C cancels cooperatively (the
// flow returns its best-so-far result with Status::kCancelled; a second
// Ctrl-C terminates as usual).

#include <string>

#include "base/run_budget.hpp"

namespace turbosyn {

/// Scans argv for the budget flags above (ignoring unrelated arguments),
/// wires the budget to global_cancel_token(), and installs the SIGINT
/// handler. Call once at the top of main().
RunBudget budget_from_cli(int argc, char** argv);

/// One-line usage blurb for the flags budget_from_cli() understands.
const char* budget_cli_help();

}  // namespace turbosyn
