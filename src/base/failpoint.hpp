#pragma once
// Deterministic fault injection for the I/O and execution layers.
//
// A failpoint is a named site compiled into a code path that can fail in the
// real world — a cache file write, a BLIF read, a stage boundary. In normal
// operation every site is disarmed and costs exactly one relaxed atomic load
// (failpoint::enabled() is false and no site is ever looked up), so the
// production paths stay bit-identical to the un-instrumented code. Tests and
// fault drills arm sites with per-site policies and the code paths then
// exercise their degradation logic deterministically: the same spec and the
// same execution order reproduce the same faults, which is what lets the
// fault fuzzer (tests/fault_fuzz_main.cpp) replay a failing schedule.
//
// Spec grammar (TS_FAILPOINTS env var, --failpoints= CLI flag, or
// failpoint::configure()):
//
//   spec    := clause (',' clause)*
//   clause  := site '=' action [':' arg] ['@' from] ['*' count]
//   action  := off | error | throw | partial | delay | crash
//
//   error       the call site simulates its native failure (a failed write,
//               an unreadable file) and takes its degradation path
//   throw       check() throws turbosyn::Error("failpoint <site>")
//   partial     partial write/read: the call site keeps only the first
//               `arg` bytes (default 16) — a torn file, a truncated record
//   delay       check() sleeps `arg` milliseconds (default 1) and the call
//               site proceeds normally — exercises timeout/backoff paths
//   crash       check() terminates the process immediately via _Exit(arg)
//               (default 137), skipping destructors and atexit handlers —
//               a kill -9 between two instructions
//
//   @from       first hit (1-based) at which the policy fires (default 1);
//               "crash@3" is crash-on-3rd-hit
//   *count      how many hits fire before the site goes quiet (default:
//               unlimited); "error*2" fails twice then succeeds — the shape
//               retry-with-backoff tests want
//
// Example: TS_FAILPOINTS='cache.entry.write=partial:40,blif.read=error@2'
//
// Sites are plain strings; the catalog of compiled-in sites is exported by
// known_sites() (and documented in DESIGN.md §13) so fuzzers can schedule
// over it. Every evaluation and every fired policy is counted per site —
// hits()/triggers() — so tests can assert a fault was actually exercised.
//
// Concurrency: check() serializes on one mutex (sites sit on I/O and stage
// boundaries, never in per-node hot loops). enabled() is lock-free.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace turbosyn {
namespace failpoint {

enum class Action : std::uint8_t { kOff, kError, kThrow, kPartialWrite, kDelay, kCrash };

/// What a check() evaluation asks the call site to do. kOff: proceed
/// normally. kError / kPartialWrite: simulate the site's native failure
/// (arg = bytes to keep for partial). kDelay: the sleep already happened,
/// proceed. kThrow / kCrash never reach the caller.
struct Hit {
  Action action = Action::kOff;
  std::int64_t arg = 0;
};

/// True iff any site is armed. One relaxed atomic load — the only cost the
/// instrumented paths pay in normal operation.
bool enabled();

/// Evaluates `site` against the armed configuration: counts the hit and
/// applies the site's policy (see Hit). Call sites gate this on enabled().
Hit check(const char* site);

/// enabled() + check() in one call, for sites without custom error shapes.
inline Hit poll(const char* site) { return enabled() ? check(site) : Hit{}; }

/// Arms sites from a spec string (grammar above). Clauses merge into the
/// current configuration, later clauses winning per site; an `off` action
/// disarms one site. Returns false (arming nothing from this spec) and
/// fills `error` on a malformed spec.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Arms sites from the TS_FAILPOINTS environment variable (no-op when
/// unset). Returns false on a malformed value, after printing to stderr.
bool configure_from_env();

/// Disarms every site and resets all hit/trigger counters.
void clear();

/// Times `site` was evaluated under an armed registry (whether or not a
/// policy fired).
std::int64_t hits(const std::string& site);

/// Times a policy actually fired at `site` (the assertion currency of the
/// fault tests: triggers("x") > 0 proves the fault was exercised).
std::int64_t triggers(const std::string& site);

/// Every site with a nonzero trigger count, sorted by name.
std::vector<std::pair<std::string, std::int64_t>> trigger_counts();

/// Catalog of the sites compiled into this binary (for fuzzers and docs).
std::vector<std::string> known_sites();

/// RAII spec for tests: configures on construction, clear()s on scope exit.
class Scoped {
 public:
  explicit Scoped(const std::string& spec);
  ~Scoped();
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;
};

}  // namespace failpoint
}  // namespace turbosyn
