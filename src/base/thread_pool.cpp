#include "base/thread_pool.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/run_budget.hpp"

namespace turbosyn {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers <= 0) {
    // At least one worker even on a single-core host, so that callers asking
    // for concurrency exercise the same code paths everywhere.
    num_workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()) - 1);
  }
  threads_.reserve(static_cast<std::size_t>(num_workers));
  for (int id = 0; id < num_workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen); });
    if (stop_) return;
    seen = job_seq_;
    Job* job = job_;
    if (id >= job->num_ranges - 1) continue;  // not a participant of this job
    // Register before releasing the lock: the caller keeps the job (and the
    // range buffer) alive until active_workers drops back to zero.
    ++job->active_workers;
    lock.unlock();
    const std::size_t completed = run_ranges(*job, id);
    lock.lock();
    job->remaining -= completed;
    --job->active_workers;
    if (job->remaining == 0 && job->active_workers == 0) done_cv_.notify_all();
  }
}

std::size_t ThreadPool::run_ranges(Job& job, int lane) {
  const auto& fn = *job.fn;
  std::size_t completed = 0;
  const auto drain = [&](Range& r) {
    for (;;) {
      const std::size_t i = r.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= r.end) break;
      // Cooperative cancellation: a fired interrupt skips the work but still
      // claims and counts the item, so the job drains deterministically.
      if (job.interrupt == nullptr || !job.interrupt->interrupted()) {
        try {
          fn(i, lane);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!job.error) job.error = std::current_exception();
        }
      }
      ++completed;
    }
  };
  drain(job.ranges[static_cast<std::size_t>(lane)]);
  for (;;) {  // steal from the victim with the most remaining work
    int victim = -1;
    std::size_t most_left = 0;
    for (int r = 0; r < job.num_ranges; ++r) {
      const Range& range = job.ranges[static_cast<std::size_t>(r)];
      const std::size_t next = range.next.load(std::memory_order_relaxed);
      const std::size_t left = next < range.end ? range.end - next : 0;
      if (left > most_left) {
        most_left = left;
        victim = r;
      }
    }
    if (victim < 0) break;
    drain(job.ranges[static_cast<std::size_t>(victim)]);
  }
  return completed;
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t, int)>& fn, int max_workers,
                          const RunBudget* interrupt) {
  if (n == 0) return;
  std::lock_guard<std::mutex> call_lock(call_mutex_);
  int workers = max_workers <= 0 ? num_workers() : std::min(max_workers, num_workers());
  workers = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(workers), n - 1));
  const int caller_lane = workers;  // caller takes the lane after the workers
  if (workers == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (interrupt != nullptr && interrupt->interrupted()) break;
      fn(i, caller_lane);
    }
    return;
  }

  const int participants = workers + 1;
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (participants > ranges_capacity_) {
      ranges_ = std::make_unique<Range[]>(static_cast<std::size_t>(participants));
      ranges_capacity_ = participants;
    }
    for (int p = 0; p < participants; ++p) {
      Range& r = ranges_[static_cast<std::size_t>(p)];
      r.next.store(n * static_cast<std::size_t>(p) / static_cast<std::size_t>(participants),
                   std::memory_order_relaxed);
      r.end = n * static_cast<std::size_t>(p + 1) / static_cast<std::size_t>(participants);
    }
    job.fn = &fn;
    job.ranges = ranges_.get();
    job.num_ranges = participants;
    job.remaining = n;
    job.interrupt = interrupt;
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  const std::size_t completed = run_ranges(job, caller_lane);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job.remaining -= completed;
    done_cv_.wait(lock, [&] { return job.remaining == 0 && job.active_workers == 0; });
    job_ = nullptr;
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace turbosyn
