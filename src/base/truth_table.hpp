#pragma once
// Dynamic truth tables over up to 16 variables.
//
// TurboSYN resynthesizes cut functions of width <= Cmax (15 in the paper),
// so a dense bit-vector representation is exact and fast. Bit i of the table
// is f evaluated at the assignment where variable j takes bit j of i
// (variable 0 is the least significant bit).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace turbosyn {

class TruthTable {
 public:
  static constexpr int kMaxVars = 16;

  /// The 0-variable constant-false function.
  TruthTable() : num_vars_(0), words_(1, 0) {}

  static TruthTable constant(int num_vars, bool value);
  /// The projection function f = x_index over num_vars variables.
  static TruthTable var(int num_vars, int index);
  /// From raw words; only the low 2^num_vars bits are used.
  static TruthTable from_words(int num_vars, std::span<const std::uint64_t> words);
  /// From a string of '0'/'1' of length 2^num_vars; character i is bit i.
  static TruthTable from_binary_string(int num_vars, const std::string& bits);

  int num_vars() const { return num_vars_; }
  std::size_t num_bits() const { return std::size_t{1} << num_vars_; }
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  bool bit(std::uint32_t assignment) const;
  void set_bit(std::uint32_t assignment, bool value);
  /// Alias for bit(): evaluates f on the given variable assignment.
  bool evaluate(std::uint32_t assignment) const { return bit(assignment); }

  bool is_const0() const;
  bool is_const1() const;
  std::size_t count_ones() const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  bool operator==(const TruthTable& o) const;
  bool operator!=(const TruthTable& o) const { return !(*this == o); }

  /// f with variable var fixed to value; the variable becomes a don't-care
  /// but the table keeps its arity.
  TruthTable cofactor(int var, bool value) const;
  bool depends_on(int var) const;
  /// Indices of variables f actually depends on, ascending.
  std::vector<int> support() const;

  /// Re-expresses f over new_num_vars variables where old variable i becomes
  /// variable var_map[i]. var_map entries must be distinct and within range.
  TruthTable remap(int new_num_vars, std::span<const int> var_map) const;

  /// Drops variable var (must not be in the support), shrinking arity by one;
  /// variables above var shift down.
  TruthTable drop_var(int var) const;

  std::uint64_t hash() const;
  /// Hex string, most significant word first (for debugging and tests).
  std::string to_hex() const;

 private:
  friend TruthTable compose(const TruthTable& g, std::span<const TruthTable> inputs);

  TruthTable(int num_vars, std::size_t word_count) : num_vars_(num_vars), words_(word_count, 0) {}
  void mask_tail();

  int num_vars_;
  std::vector<std::uint64_t> words_;
};

/// Composes g with per-input functions: result(x) = g(inputs[0](x), ...).
/// All entries of inputs must share the same arity, which the result keeps.
TruthTable compose(const TruthTable& g, std::span<const TruthTable> inputs);

}  // namespace turbosyn
