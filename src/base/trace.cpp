#include "base/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "base/json_util.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

/// Innermost open span of the calling thread (spans nest strictly).
thread_local TraceSpan* t_current_span = nullptr;

/// One escaper for every JSON emitter (base/json_util.hpp): the trace sink
/// must render names byte-for-byte like the batch/daemon record emitters,
/// or the same circuit appears under two spellings across artifacts.
void json_escape(std::ostream& os, const std::string& s) {
  std::string out;
  out.reserve(s.size());
  turbosyn::json_escape(out, s);
  os << out;
}

void json_counters(std::ostream& os,
                   const std::vector<std::pair<std::string, std::int64_t>>& counters) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    json_escape(os, name);
    os << "\": " << value;
  }
  os << '}';
}

}  // namespace

TraceSink::TraceSink() : epoch_(Clock::now()) {}

int TraceSink::begin_span() {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_id_++;
}

void TraceSink::post(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.id < b.id; });
  return out;
}

std::map<std::string, std::int64_t> TraceSink::totals() const {
  std::map<std::string, std::int64_t> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& e : events_) {
    for (const auto& [name, value] : e.counters) out[name] += value;
  }
  return out;
}

double TraceSink::total_seconds() const {
  double total = 0.0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& e : events_) {
    if (e.depth == 0) total += e.seconds;
  }
  return total;
}

void TraceSink::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();
  double total = 0.0;
  std::map<std::string, std::int64_t> agg;
  for (const TraceEvent& e : evs) {
    if (e.depth == 0) total += e.seconds;
    for (const auto& [name, value] : e.counters) agg[name] += value;
  }
  os << "{\n  \"version\": 1,\n  \"total_seconds\": " << total << ",\n  \"counters\": ";
  std::vector<std::pair<std::string, std::int64_t>> agg_list(agg.begin(), agg.end());
  json_counters(os, agg_list);
  os << ",\n  \"spans\": [";
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (!first) os << ',';
    first = false;
    os << "\n    { \"id\": " << e.id << ", \"parent\": " << e.parent
       << ", \"depth\": " << e.depth << ", \"name\": \"";
    json_escape(os, e.name);
    os << "\", \"detail\": \"";
    json_escape(os, e.detail);
    os << "\", \"start_s\": " << e.start_s << ", \"seconds\": " << e.seconds
       << ", \"counters\": ";
    json_counters(os, e.counters);
    os << " }";
  }
  os << "\n  ]\n}\n";
}

std::string TraceSink::to_json() const {
  std::ostringstream os;
  os.precision(9);
  write_json(os);
  return os.str();
}

bool TraceSink::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(9);
  write_json(out);
  return static_cast<bool>(out);
}

TraceSpan::TraceSpan(TraceSink* sink, std::string name, std::string detail) : sink_(sink) {
  if (sink_ == nullptr) return;
  start_ = Clock::now();
  event_.id = sink_->begin_span();
  event_.name = std::move(name);
  event_.detail = std::move(detail);
  event_.start_s = std::chrono::duration<double>(start_ - sink_->epoch_).count();
  outer_ = t_current_span;
  event_.parent = outer_ != nullptr ? outer_->event_.id : -1;
  event_.depth = outer_ != nullptr ? outer_->event_.depth + 1 : 0;
  t_current_span = this;
}

TraceSpan::TraceSpan(const TraceSpan& parent, std::string name, std::string detail)
    : sink_(parent.sink_) {
  if (sink_ == nullptr) return;
  start_ = Clock::now();
  event_.id = sink_->begin_span();
  event_.name = std::move(name);
  event_.detail = std::move(detail);
  event_.start_s = std::chrono::duration<double>(start_ - sink_->epoch_).count();
  // The parent lives on another thread, but id and depth are written once at
  // construction (before any lane launches) and never mutated, so reading
  // them here is race-free. The calling thread's own stack still nests any
  // further spans under this one.
  event_.parent = parent.event_.id;
  event_.depth = parent.event_.depth + 1;
  outer_ = t_current_span;
  t_current_span = this;
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  event_.seconds = std::chrono::duration<double>(Clock::now() - start_).count();
  t_current_span = outer_;
  sink_->post(std::move(event_));
}

void TraceSpan::set_detail(std::string detail) {
  if (sink_ != nullptr) event_.detail = std::move(detail);
}

void TraceSpan::counter(const std::string& name, std::int64_t value) {
  if (sink_ == nullptr || value == 0) return;
  for (auto& [n, v] : event_.counters) {
    if (n == name) {
      v += value;
      return;
    }
  }
  event_.counters.emplace_back(name, value);
}

double TraceSpan::seconds_so_far() const {
  if (sink_ == nullptr) return 0.0;
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace turbosyn
