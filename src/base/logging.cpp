#include "base/logging.hpp"

namespace turbosyn {
namespace {

LogLevel g_level = LogLevel::kQuiet;

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  const char* tag = level == LogLevel::kDebug ? "[debug] " : "[info] ";
  std::cerr << tag << msg << '\n';
}

}  // namespace detail
}  // namespace turbosyn
