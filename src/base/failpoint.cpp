#include "base/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <thread>

#include "base/check.hpp"

namespace turbosyn {
namespace failpoint {
namespace {

struct SiteConfig {
  Action action = Action::kOff;
  std::int64_t arg = 0;
  std::int64_t from = 1;       // first hit (1-based) that fires
  std::int64_t count = -1;     // firings before going quiet (-1 = unlimited)
  std::int64_t hits = 0;       // evaluations of this site
  std::int64_t triggers = 0;   // policies actually fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteConfig> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> armed{false};

std::int64_t default_arg(Action action) {
  switch (action) {
    case Action::kPartialWrite:
      return 16;   // bytes kept
    case Action::kDelay:
      return 1;    // milliseconds
    case Action::kCrash:
      return 137;  // exit code, the kill -9 convention
    default:
      return 0;
  }
}

bool parse_action(const std::string& name, Action& action) {
  if (name == "off") action = Action::kOff;
  else if (name == "error") action = Action::kError;
  else if (name == "throw") action = Action::kThrow;
  else if (name == "partial") action = Action::kPartialWrite;
  else if (name == "delay") action = Action::kDelay;
  else if (name == "crash") action = Action::kCrash;
  else return false;
  return true;
}

bool parse_int(const std::string& text, std::int64_t& value) {
  if (text.empty()) return false;
  try {
    std::size_t used = 0;
    value = std::stoll(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

/// One `site=action[:arg][@from][*count]` clause into (name, config).
bool parse_clause(const std::string& clause, std::string& site, SiteConfig& config,
                  std::string& error) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    error = "clause '" + clause + "' is not site=action";
    return false;
  }
  site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  // Suffixes bind rightmost-first: *count, then @from, then :arg.
  const auto take_suffix = [&rest](char sep, std::string& out) {
    const std::size_t at = rest.rfind(sep);
    if (at == std::string::npos) return false;
    out = rest.substr(at + 1);
    rest.resize(at);
    return true;
  };
  std::string count_text;
  std::string from_text;
  std::string arg_text;
  if (take_suffix('*', count_text) && !parse_int(count_text, config.count)) {
    error = "bad *count in '" + clause + "'";
    return false;
  }
  if (take_suffix('@', from_text) && !parse_int(from_text, config.from)) {
    error = "bad @from in '" + clause + "'";
    return false;
  }
  if (take_suffix(':', arg_text) && !parse_int(arg_text, config.arg)) {
    error = "bad :arg in '" + clause + "'";
    return false;
  }
  if (!parse_action(rest, config.action)) {
    error = "unknown action '" + rest + "' in '" + clause +
            "' (expected off|error|throw|partial|delay|crash)";
    return false;
  }
  if (arg_text.empty()) config.arg = default_arg(config.action);
  if (config.from < 1 || config.count == 0 || config.count < -1) {
    error = "bad @from/*count range in '" + clause + "'";
    return false;
  }
  return true;
}

}  // namespace

bool enabled() { return armed.load(std::memory_order_relaxed); }

Hit check(const char* site) {
  Action action = Action::kOff;
  std::int64_t arg = 0;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.sites.find(site);
    if (it == r.sites.end()) return Hit{};
    SiteConfig& config = it->second;
    ++config.hits;
    if (config.action == Action::kOff) return Hit{};
    if (config.hits < config.from) return Hit{};
    if (config.count >= 0 && config.triggers >= config.count) return Hit{};
    ++config.triggers;
    action = config.action;
    arg = config.arg;
  }
  // Policies that act here act outside the lock: a throw must not poison the
  // registry mutex and a delay must not serialize unrelated sites.
  switch (action) {
    case Action::kThrow:
      throw Error(std::string("failpoint ") + site);
    case Action::kCrash:
      // Simulated kill between two instructions: no destructors, no atexit,
      // no stream flushes — exactly the torn state crash recovery must face.
      std::_Exit(static_cast<int>(arg));
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(arg));
      return Hit{Action::kDelay, arg};
    default:
      return Hit{action, arg};
  }
}

bool configure(const std::string& spec, std::string* error) {
  // Parse the whole spec before arming anything: a malformed spec arms
  // nothing rather than half of a schedule.
  std::vector<std::pair<std::string, SiteConfig>> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;
    std::string site;
    SiteConfig config;
    std::string parse_error;
    if (!parse_clause(clause, site, config, parse_error)) {
      if (error != nullptr) *error = parse_error;
      return false;
    }
    parsed.emplace_back(std::move(site), config);
  }

  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [site, config] : parsed) {
    SiteConfig& slot = r.sites[site];
    const std::int64_t hits = slot.hits;         // counters survive re-arming
    const std::int64_t triggers = slot.triggers;
    slot = config;
    slot.hits = hits;
    slot.triggers = triggers;
  }
  bool any_armed = false;
  for (const auto& [site, config] : r.sites) {
    if (config.action != Action::kOff) any_armed = true;
  }
  armed.store(any_armed, std::memory_order_relaxed);
  return true;
}

bool configure_from_env() {
  const char* spec = std::getenv("TS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return true;
  std::string error;
  if (!configure(spec, &error)) {
    std::cerr << "error: TS_FAILPOINTS: " << error << '\n';
    return false;
  }
  return true;
}

void clear() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  armed.store(false, std::memory_order_relaxed);
}

std::int64_t hits(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::int64_t triggers(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.triggers;
}

std::vector<std::pair<std::string, std::int64_t>> trigger_counts() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::int64_t>> counts;
  for (const auto& [site, config] : r.sites) {
    if (config.triggers > 0) counts.emplace_back(site, config.triggers);
  }
  return counts;
}

std::vector<std::string> known_sites() {
  // The compiled-in catalog, kept in sync with DESIGN.md §13. Sites are
  // plain strings at the call sites; this list exists for fuzz schedules
  // and documentation, not for validation (an unknown site simply never
  // fires).
  return {
      "blif.read",           // netlist/blif.cpp: file ingest
      "cache.entry.read",    // cache/flow_cache.cpp: entry load
      "cache.entry.write",   // cache/flow_cache.cpp: tmp-file body write
      "cache.entry.rename",  // cache/flow_cache.cpp: tmp -> final publish
      "cache.sidecar.read",  // cache/flow_cache.cpp: near-miss index load
      "cache.sidecar.write", // cache/flow_cache.cpp: near-miss index publish
      "driver.stage",        // core/driver.cpp: every stage boundary
                             // (driver.stage.<name> targets one stage)
      "batch.job",           // service/batch_runner.cpp: per-circuit boundary
      "batch.jsonl.write",   // service/batch_runner.cpp: record emission
  };
}

Scoped::Scoped(const std::string& spec) {
  std::string error;
  TS_CHECK(configure(spec, &error), "failpoint spec: " << error);
}

Scoped::~Scoped() { clear(); }

}  // namespace failpoint
}  // namespace turbosyn
