#pragma once
// Exact rational arithmetic on 64-bit integers.
//
// Used to report exact maximum delay-to-register (MDR) ratios: the ratio of
// a cycle is delay(C)/weight(C) with both terms bounded by circuit size, so
// 64-bit numerators/denominators never overflow for the circuit sizes this
// library targets. Comparisons cross-multiply in 128 bits.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace turbosyn {

/// A normalized rational number num/den with den > 0 and gcd(|num|, den) = 1.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num, std::int64_t den);
  /// Implicit from integer, as in `Rational r = 3;`.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool is_integer() const { return den_ == 1; }
  /// Smallest integer >= this.
  std::int64_t ceil() const;
  /// Largest integer <= this.
  std::int64_t floor() const;
  double to_double() const;
  std::string to_string() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const { return Rational(-num_, den_); }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  /// The mediant (num1+num2)/(den1+den2); lies strictly between distinct operands.
  static Rational mediant(const Rational& a, const Rational& b);

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace turbosyn
